"""Property-based laws of the /metrics exposition and shard merging.

Whatever traffic the server sees, three things must hold: the rendered
exposition always parses under the Prometheus text grammar, cumulative
bucket counts are monotone and agree with ``_count``, and the shard-merge
fold is order-insensitive — the merged counters a scrape reports cannot
depend on which handler thread's shard happened to merge first.  All
three are derived here from *generated* request streams rather than the
handful of shapes the unit tests pin.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import ObsRegistry
from repro.serve.telemetry import (
    LATENCY_BUCKETS,
    ServeTelemetry,
    bucket_index,
    parse_exposition,
    render_metrics,
)

#: One simulated request: (endpoint, status, latency seconds).
requests_strategy = st.lists(
    st.tuples(
        st.sampled_from(["query", "classify", "lint", "healthz", "statsz", "unknown"]),
        st.sampled_from([200, 201, 301, 400, 404, 500, 503]),
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False, allow_infinity=False),
    ),
    max_size=60,
)


def _replay(reqs) -> ServeTelemetry:
    tel = ServeTelemetry(hist_window=16)
    for endpoint, status, latency in reqs:
        tel.record_request(endpoint, status, latency)
    return tel


@settings(max_examples=60, deadline=None)
@given(requests_strategy)
def test_metrics_always_parse(reqs):
    tel = _replay(reqs)
    samples = parse_exposition(tel.metrics_text())
    # Total requests across families equals the replayed stream length.
    total = sum(v for _, v in samples.get("repro_http_requests_total", []))
    assert total == len(reqs)


@settings(max_examples=60, deadline=None)
@given(requests_strategy)
def test_bucket_counts_monotone_and_match_count(reqs):
    tel = _replay(reqs)
    samples = parse_exposition(tel.metrics_text())
    buckets: dict[str, list[tuple[str, float]]] = {}
    for labels, value in samples.get("repro_http_request_duration_seconds_bucket", []):
        buckets.setdefault(labels["endpoint"], []).append((labels["le"], value))
    counts = {
        l["endpoint"]: v
        for l, v in samples.get("repro_http_request_duration_seconds_count", [])
    }
    per_endpoint_total = {}
    for endpoint, status, latency in reqs:
        per_endpoint_total[endpoint] = per_endpoint_total.get(endpoint, 0) + 1
    for endpoint, series in buckets.items():
        values = [v for _, v in series]
        assert values == sorted(values)
        assert series[-1][0] == "+Inf"
        # +Inf bucket == _count == number of replayed requests there.
        assert series[-1][1] == counts[endpoint] == per_endpoint_total[endpoint]


@settings(max_examples=60, deadline=None)
@given(requests_strategy)
def test_count_sum_consistent_with_statsz_histograms(reqs):
    """``_count``/``_sum`` on /metrics equal the exact merged-histogram
    count/total that /statsz reports, even after window eviction."""
    tel = _replay(reqs)
    merged = tel.merged()
    samples = parse_exposition(tel.metrics_text())
    counts = {
        l["endpoint"]: v
        for l, v in samples.get("repro_http_request_duration_seconds_count", [])
    }
    sums = {
        l["endpoint"]: v
        for l, v in samples.get("repro_http_request_duration_seconds_sum", [])
    }
    for endpoint in counts:
        hist = f"serve.http.{endpoint}"
        assert counts[endpoint] == merged.hist_count(hist)
        assert abs(sums[endpoint] - merged.hist_total(hist)) <= 1e-9 * max(
            1.0, abs(merged.hist_total(hist))
        )


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(1, 100)),
            max_size=10,
        ),
        min_size=1,
        max_size=6,
    ),
    st.randoms(use_true_random=False),
)
def test_shard_merge_order_insensitive(shard_specs, rng):
    """Folding the same shard snapshots in any permutation yields identical
    counters and histogram count/total — merged reads cannot depend on
    thread scheduling."""
    shards = []
    for spec in shard_specs:
        reg = ObsRegistry(hist_window=8)
        for name, amount in spec:
            reg.add(name, amount)
            reg.observe(f"lat.{name}", float(amount))
        shards.append(reg)
    shuffled = list(shards)
    rng.shuffle(shuffled)
    merged_fwd = ObsRegistry(hist_window=8)
    merged_shuffled = ObsRegistry(hist_window=8)
    for reg in shards:
        merged_fwd.merge(reg.snapshot())
    for reg in shuffled:
        merged_shuffled.merge(reg.snapshot())
    assert merged_fwd.counters == merged_shuffled.counters
    for name in merged_fwd.histograms:
        assert merged_fwd.hist_count(name) == merged_shuffled.hist_count(name)
        assert merged_fwd.hist_total(name) == merged_shuffled.hist_total(name)


@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
def test_bucket_index_is_le_partition(latency):
    """Every latency lands in exactly the first bucket whose bound covers
    it — the invariant that makes cumulative rendering correct."""
    idx = bucket_index(latency)
    if idx < len(LATENCY_BUCKETS):
        assert latency <= LATENCY_BUCKETS[idx]
    if idx > 0:
        assert latency > LATENCY_BUCKETS[idx - 1]


@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(
        st.text(
            alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
            min_size=1,
            max_size=20,
        ),
        st.integers(0, 10**12),
        max_size=8,
    )
)
def test_arbitrary_counter_names_render_parseably(counters):
    """Counter names are caller-chosen strings; whatever they contain, the
    rendered exposition must stay inside the grammar."""
    reg = ObsRegistry()
    for name, value in counters.items():
        reg.add(name, value)
    # A sentinel gauge keeps the exposition non-empty when no counters
    # were generated (the live endpoint always carries uptime/records).
    samples = parse_exposition(render_metrics(reg, gauges={"up": 1.0}))
    rendered = samples.get("repro_counter_total", [])
    assert len(rendered) == len(counters)
    assert sum(v for _, v in rendered) == sum(counters.values())
