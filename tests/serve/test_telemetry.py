"""Tests for the live-telemetry layer: shards, traces, and exposition.

Covers the PR-9 acceptance criteria at the unit level: sharded per-thread
registries lose no counts and match a globally-locked reference
bit-for-bit; the trace store honors its head/tail/slow bounds; request
traces nest across the batcher thread handoff; the trace export round-
trips through :mod:`repro.trace`; and ``/metrics`` output is grammatical
and consistent with ``/statsz``.
"""

import json
import threading
import time

import pytest

from repro.obs import (
    ObsRegistry,
    TraceContext,
    activate_trace,
    deactivate_trace,
    trace_span,
)
from repro.serve.telemetry import (
    LATENCY_BUCKETS,
    ServeTelemetry,
    ShardedObs,
    TraceEntry,
    TraceStore,
    bucket_index,
    parse_exposition,
    render_metrics,
)
from repro.trace import parse_trace


class TestShardedObs:
    def test_counts_survive_many_threads_no_losses(self):
        sharded = ShardedObs()
        reference = ObsRegistry()
        ref_lock = threading.Lock()
        per_thread, n_threads = 500, 8

        def work():
            for _ in range(per_thread):
                sharded.add("hits")
                sharded.observe("lat", 0.001)
                with ref_lock:
                    reference.add("hits")
                    reference.observe("lat", 0.001)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        merged = sharded.merged()
        # Bit-identical counter parity with the locked implementation.
        assert merged.count("hits") == reference.count("hits") == per_thread * n_threads
        assert merged.hist_count("lat") == reference.hist_count("lat")
        assert sharded.count("hits") == per_thread * n_threads

    def test_shards_reclaimed_from_dead_threads(self):
        sharded = ShardedObs()
        for _ in range(50):
            t = threading.Thread(target=lambda: sharded.add("hits"))
            t.start()
            t.join()
        # 50 sequential short-lived threads reuse a bounded shard set.
        assert sharded.n_shards <= 3
        assert sharded.merged().count("hits") == 50

    def test_merged_includes_base_registry(self):
        base = ObsRegistry()
        base.add("built", 7)
        sharded = ShardedObs()
        sharded.add("live", 2)
        merged = sharded.merged(base)
        assert merged.count("built") == 7
        assert merged.count("live") == 2

    def test_disabled_router_is_inert(self):
        sharded = ShardedObs(enabled=False)
        sharded.add("hits")
        sharded.observe("lat", 1.0)
        assert sharded.merged().count("hits") == 0

    def test_merge_order_insensitive(self):
        """Folding the same shard snapshots in any order yields the same
        counters (integer sums commute)."""
        shards = []
        for k in range(4):
            reg = ObsRegistry(hist_window=8)
            reg.add("hits", k + 1)
            reg.observe("lat", float(k))
            shards.append(reg)
        fwd = ObsRegistry(hist_window=8)
        rev = ObsRegistry(hist_window=8)
        for reg in shards:
            fwd.merge(reg.snapshot())
        for reg in reversed(shards):
            rev.merge(reg.snapshot())
        assert fwd.counters == rev.counters
        assert fwd.hist_count("lat") == rev.hist_count("lat")
        assert fwd.hist_total("lat") == rev.hist_total("lat")


class TestTraceContext:
    def test_nesting_and_parentage(self):
        trace = TraceContext()
        token = activate_trace(trace)
        try:
            with trace_span("outer") as outer:
                with trace_span("inner") as inner:
                    pass
        finally:
            deactivate_trace(token)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert all(s.duration >= 0 for s in trace.spans)

    def test_span_budget_drops_excess(self):
        trace = TraceContext(max_spans=3)
        token = activate_trace(trace)
        try:
            for _ in range(10):
                with trace_span("s"):
                    pass
        finally:
            deactivate_trace(token)
        assert len(trace) == 3
        assert trace.dropped == 7

    def test_no_active_trace_is_noop(self):
        with trace_span("orphan") as sp:
            assert sp is None

    def test_cross_thread_add_span(self):
        trace = TraceContext()
        token = activate_trace(trace)
        try:
            with trace_span("request") as root:
                start = time.perf_counter()

                def worker():
                    trace.add_span(
                        "model.predict", root.span_id, start, 0.005, batch_size=3
                    )

                t = threading.Thread(target=worker)
                t.start()
                t.join()
        finally:
            deactivate_trace(token)
        names = {s.name: s for s in trace.spans}
        assert names["model.predict"].parent_id == names["request"].span_id
        assert names["model.predict"].duration == pytest.approx(0.005)

    def test_adopts_caller_trace_id(self):
        tel = ServeTelemetry()
        adopted = tel.new_trace("ABCD1234-dead-beef")
        assert adopted.trace_id == "abcd1234-dead-beef"
        generated = tel.new_trace("no good : id")
        assert generated.trace_id != "no good : id"
        assert len(generated.trace_id) == 32


def _entry(endpoint="q", status=200, duration=0.01, trace=None):
    return TraceEntry(
        trace=trace if trace is not None else TraceContext(),
        endpoint=endpoint,
        status=status,
        duration_s=duration,
    )


class TestTraceStore:
    def test_head_tail_slow_bounds(self):
        store = TraceStore(head=3, tail=4, slow=2, slow_threshold_s=0.1)
        for i in range(100):
            store.offer(_entry(duration=0.001 * (i + 1)))
        entries = store.entries()
        assert store.seen == 100
        # head(3) + tail(last 4) + slow(2 slowest >= 0.1s), deduped.
        seqs = [e.seq for e in entries]
        assert seqs == sorted(seqs)
        assert set(seqs[:3]) == {1, 2, 3}
        assert set(seqs[-4:]) == {97, 98, 99, 100}
        assert len(entries) <= 3 + 4 + 2

    def test_slow_keeps_the_slowest(self):
        store = TraceStore(head=0, tail=0, slow=3, slow_threshold_s=0.5)
        for d in (0.6, 2.0, 0.7, 1.5, 0.9, 3.0, 0.1):
            store.offer(_entry(duration=d))
        kept = sorted(e.duration_s for e in store.entries())
        assert kept == [1.5, 2.0, 3.0]

    def test_get_by_trace_id(self):
        store = TraceStore()
        entry = _entry()
        store.offer(entry)
        assert store.get(entry.trace.trace_id) is entry
        assert store.get("nope") is None

    def test_export_round_trips_through_repro_trace(self):
        store = TraceStore()
        for _ in range(3):
            trace = TraceContext()
            token = activate_trace(trace)
            with trace_span("http.query"):
                with trace_span("index.lookup", rows=5):
                    pass
            deactivate_trace(token)
            store.offer(_entry(trace=trace))
        text = store.export_jsonl()
        parsed = parse_trace(text, origin="<memory>")
        assert parsed.manifest["format"] == "repro-run-manifest-v1"
        assert parsed.n_spans == 6
        assert len(parsed.roots) == 3  # one root per request
        for root in parsed.roots:
            assert root.name == "http.query"
            assert [c.name for c in root.children] == ["index.lookup"]
        assert parsed.summary["timer_calls"]["index.lookup"] == 3

    def test_exported_spans_carry_trace_ids(self):
        store = TraceStore()
        trace = TraceContext()
        token = activate_trace(trace)
        with trace_span("http.q"):
            pass
        deactivate_trace(token)
        store.offer(_entry(trace=trace))
        spans = [
            json.loads(l)
            for l in store.export_jsonl().splitlines()
            if json.loads(l).get("type") == "span"
        ]
        assert spans and all(s["trace_id"] == trace.trace_id for s in spans)


class TestExposition:
    def _telemetry_with_traffic(self):
        tel = ServeTelemetry()
        for i in range(20):
            tel.record_request("query", 200, 0.002 * (i + 1))
        tel.record_request("query", 500, 0.3)
        tel.record_request("classify", 404, 0.05)
        return tel

    def test_metrics_parse_and_match_statsz(self):
        tel = self._telemetry_with_traffic()
        merged = tel.merged()
        samples = parse_exposition(tel.metrics_text())
        requests = {
            (l["endpoint"], l["family"]): v
            for l, v in samples["repro_http_requests_total"]
        }
        assert requests[("query", "2xx")] == 20
        assert requests[("query", "5xx")] == 1
        assert requests[("classify", "4xx")] == 1
        # _count/_sum agree with the merged registry's exact values.
        counts = {
            l["endpoint"]: v
            for l, v in samples["repro_http_request_duration_seconds_count"]
        }
        sums = {
            l["endpoint"]: v
            for l, v in samples["repro_http_request_duration_seconds_sum"]
        }
        assert counts["query"] == merged.hist_count("serve.http.query") == 21
        assert sums["query"] == pytest.approx(merged.hist_total("serve.http.query"))
        # Every merged counter is also exposed under repro_counter_total.
        by_name = {l["name"]: v for l, v in samples["repro_counter_total"]}
        for name, value in merged.counters.items():
            assert by_name[name] == value

    def test_bucket_counts_monotone_and_exhaustive(self):
        tel = self._telemetry_with_traffic()
        samples = parse_exposition(tel.metrics_text())
        per_endpoint = {}
        for labels, value in samples["repro_http_request_duration_seconds_bucket"]:
            per_endpoint.setdefault(labels["endpoint"], []).append((labels["le"], value))
        counts = {
            l["endpoint"]: v
            for l, v in samples["repro_http_request_duration_seconds_count"]
        }
        for endpoint, buckets in per_endpoint.items():
            values = [v for _, v in buckets]
            assert values == sorted(values), f"{endpoint} buckets not monotone"
            assert buckets[-1][0] == "+Inf"
            assert buckets[-1][1] == counts[endpoint]

    def test_bucket_index_matches_le_semantics(self):
        for value, expect in ((0.0005, 0), (0.001, 0), (0.0011, 1), (50.0, len(LATENCY_BUCKETS))):
            assert bucket_index(value) == expect

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_exposition("this is not prometheus\n")
        with pytest.raises(ValueError):
            parse_exposition('metric{unclosed="x} 1\n')
        with pytest.raises(ValueError):
            parse_exposition("metric nan_value_that_is_not_a_float\n")

    def test_label_escaping_round_trips(self):
        reg = ObsRegistry()
        reg.add('weird"name\\with\nstuff', 3)
        samples = parse_exposition(render_metrics(reg))
        by_name = {l["name"]: v for l, v in samples["repro_counter_total"]}
        assert by_name['weird\\"name\\\\with\\nstuff'] == 3

    def test_endpoint_stats_quantiles_and_errors(self):
        tel = self._telemetry_with_traffic()
        stats = tel.endpoint_stats(tel.merged())
        q = stats["query"]
        assert q["requests"] == 21
        assert q["error_rate"] == pytest.approx(1 / 21)
        assert 0 < q["p50_ms"] <= q["p95_ms"] <= q["p99_ms"]
        assert stats["classify"]["rate_4xx"] == 1.0


class TestServiceIntegration:
    def test_classify_trace_has_nested_pipeline_spans(self, service, patch_text):
        trace = service.telemetry.new_trace(None)
        token = activate_trace(trace)
        try:
            with trace_span("http.classify"):
                service.classify(patch_text, batched=True)
        finally:
            deactivate_trace(token)
        names = [s.name for s in trace.spans]
        for expected in (
            "http.classify",
            "service.classify",
            "patch.parse",
            "features.extract",
            "classify.batch",
            "model.predict",
            "categorize",
            "lint.patch",
        ):
            assert expected in names, f"missing span {expected}: {names}"
        by_name = {s.name: s for s in trace.spans}
        assert by_name["service.classify"].parent_id == by_name["http.classify"].span_id
        # The batcher-thread span parents under the submit-side span.
        assert by_name["model.predict"].parent_id == by_name["classify.batch"].span_id
        assert by_name["model.predict"].attributes["batched"] is True

    def test_query_trace_shows_index_spans(self, service):
        from repro.core import PatchQuery

        trace = service.telemetry.new_trace(None)
        token = activate_trace(trace)
        try:
            with trace_span("http.query"):
                service.query(PatchQuery(is_security=True, limit=2, offset=1))
        finally:
            deactivate_trace(token)
        names = [s.name for s in trace.spans]
        assert "service.query" in names
        assert "query.count" in names
        assert "query.page" in names

    def test_statsz_carries_endpoint_and_trace_sections(self, service):
        service.record_request("query", 200, 0.01)
        stats = service.statsz()
        assert "endpoints" in stats and "traces" in stats
        assert stats["endpoints"]["query"]["requests"] >= 1
        assert stats["traces"]["seen"] >= 0

    def test_metrics_text_consistent_with_statsz(self, service):
        service.record_request("query", 200, 0.01)
        stats = service.statsz()
        samples = parse_exposition(service.metrics_text())
        by_name = {l["name"]: v for l, v in samples["repro_counter_total"]}
        for name in ("http_requests", "http_query"):
            assert by_name[name] == stats["counters"][name]
        assert samples["repro_records"][0][1] == len(service.db)

    def test_disabled_telemetry_service_still_serves(self, experiment_world):
        from repro.analysis.experiments import build_patchdb
        from repro.core import PatchQuery
        from repro.serve import PatchDBService

        svc = PatchDBService(
            experiment_world,
            build_patchdb(experiment_world),
            telemetry=ServeTelemetry(enabled=False),
        )
        try:
            assert svc.query(PatchQuery(limit=1))["count"] == 1
            svc.record_request("query", 200, 0.01)
            stats = svc.statsz()
            assert "endpoints" not in stats
            assert svc.telemetry.new_trace(None) is None
        finally:
            svc.close()
