"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

PATCH_TEXT = """commit b84c2cab55948a5ee70860779b2640913e3ee1ed
Author: Dev <d@example.org>
Date:   Tue Nov 5 10:00:00 2019 -0500

    prevent stack underflow

diff --git a/src/bits.c b/src/bits.c
--- a/src/bits.c
+++ b/src/bits.c
@@ -953,7 +953,7 @@ bit_write_UMC (Bit_Chain *dat, BITCODE_UMC val)
     if (byte[i] & 0x7f)
       break;

-  if (byte[i] & 0x40)
+  if (byte[i] & 0x40 && i > 0)
     byte[i] &= 0x7f;
   for (j = 4; j >= i; j--)
     {
"""

BEFORE_C = "int get(int idx, int cap)\n{\n    if (idx >= cap)\n        return -1;\n    return idx;\n}\n"
AFTER_C = BEFORE_C.replace("idx >= cap", "idx >= cap || idx < 0")


@pytest.fixture()
def patch_file(tmp_path):
    path = tmp_path / "fix.patch"
    path.write_text(PATCH_TEXT)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize(
        "cmd",
        [
            "build",
            "augment",
            "evaluate",
            "stats",
            "features",
            "categorize",
            "synthesize",
            "lint",
            "autofix",
            "trace",
            "serve",
            "bench-serve",
        ],
    )
    def test_subcommands_exist(self, cmd):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([cmd, "--help"])

    @pytest.mark.parametrize("cmd", ["build", "augment", "evaluate", "lint", "serve", "autofix"])
    def test_world_flags_shared_across_subcommands(self, cmd):
        """Every world-building subcommand accepts the shared parent flags."""
        argv = [cmd, "--scale", "tiny", "--seed", "7", "--workers", "2"]
        if cmd == "build":
            argv.append("out.jsonl")
        args = build_parser().parse_args(argv)
        assert (args.scale, args.seed, args.workers) == ("tiny", 7, 2)
        assert hasattr(args, "world_cache")

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--model-cache", "m.pkl", "--max-batch", "8"]
        )
        assert args.port == 0
        assert args.model_cache == "m.pkl"
        assert args.max_batch == 8

    def test_bench_serve_flags(self):
        args = build_parser().parse_args(["bench-serve", "--duration", "0.5"])
        assert args.duration == 0.5
        assert args.output == "BENCH_serve.json"


class TestMissingFileErrors:
    """A bad path exits 2 with a clean error, not a traceback (no raw OSError)."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["features", "/no/such/file.patch"],
            ["categorize", "/no/such/file.patch"],
            ["lint", "/no/such/file.c"],
        ],
    )
    def test_clean_error_and_exit_2(self, argv, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read")
        assert "Traceback" not in err

    def test_synthesize_missing_input(self, tmp_path, capsys):
        before = tmp_path / "b.c"
        before.write_text(BEFORE_C)
        assert main(["synthesize", str(before), str(tmp_path / "missing.c")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestCategorize:
    def test_prints_type(self, patch_file, capsys):
        assert main(["categorize", patch_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("3\t")
        assert "sanity checks" in out


class TestFeatures:
    def test_nonzero_only_by_default(self, patch_file, capsys):
        assert main(["features", patch_file]) == 0
        out = capsys.readouterr().out
        assert "changed_lines: 2" in out
        assert "added_loops" not in out

    def test_all_flag_prints_sixty(self, patch_file, capsys):
        assert main(["features", "--all", patch_file]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 60


class TestSynthesize:
    def test_all_variants(self, tmp_path, capsys):
        before = tmp_path / "b.c"
        after = tmp_path / "a.c"
        before.write_text(BEFORE_C)
        after.write_text(AFTER_C)
        assert main(["synthesize", str(before), str(after)]) == 0
        out = capsys.readouterr().out
        assert out.count("# variant") == 8
        assert "_SYS_" in out

    def test_single_variant(self, tmp_path, capsys):
        before = tmp_path / "b.c"
        after = tmp_path / "a.c"
        before.write_text(BEFORE_C)
        after.write_text(AFTER_C)
        assert main(["synthesize", str(before), str(after), "--variant", "1"]) == 0
        out = capsys.readouterr().out
        assert out.count("# variant") == 1
        assert "_SYS_ZERO" in out

    def test_no_if_site_fails(self, tmp_path, capsys):
        before = tmp_path / "b.c"
        after = tmp_path / "a.c"
        before.write_text("int x = 1;\n")
        after.write_text("int x = 2;\n")
        assert main(["synthesize", str(before), str(after)]) == 1


class TestBuildAndStats:
    def test_build_then_stats(self, tmp_path, capsys):
        out_path = tmp_path / "db.jsonl"
        assert main(["build", str(out_path), "--scale", "tiny", "--no-synthetic"]) == 0
        build_out = capsys.readouterr().out
        assert "nvd_security" in build_out
        assert out_path.exists()

        assert main(["stats", str(out_path)]) == 0
        stats_out = capsys.readouterr().out
        assert "security patch composition" in stats_out
        assert "total" in stats_out

    def test_build_with_feature_cache_workers_and_stats(self, tmp_path, capsys):
        out_path = tmp_path / "db.jsonl"
        npz_path = tmp_path / "vectors.npz"
        assert (
            main(
                [
                    "build",
                    str(out_path),
                    "--scale",
                    "tiny",
                    "--no-synthetic",
                    "--workers",
                    "2",
                    "--feature-cache",
                    str(npz_path),
                    "--stats",
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert out_path.exists()
        assert npz_path.exists()
        assert "persisted" in err
        assert "phase timings:" in err
        assert "vectors_extracted" in err


class TestEvaluate:
    def test_table6_with_engine_and_token_cache(self, tmp_path, capsys):
        pkl_path = tmp_path / "tokens.pkl"
        assert (
            main(
                [
                    "evaluate",
                    "--scale",
                    "tiny",
                    "--tables",
                    "6",
                    "--ml-workers",
                    "2",
                    "--token-cache",
                    str(pkl_path),
                    "--stats",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "Table VI" in captured.out
        assert "Random Forest" in captured.out
        assert "Table III" not in captured.out
        assert pkl_path.exists()
        assert "token sequences" in captured.err
        assert "phase timings:" in captured.err

    def test_unknown_table_rejected(self, capsys):
        assert main(["evaluate", "--tables", "5"]) == 2
        assert "unknown table" in capsys.readouterr().err


class TestAugmentAndTrace:
    def test_augment_runs_table2(self, capsys):
        assert main(["augment", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "round 1" in out
        assert "wild security patches found" in out

    def test_stats_json_payload(self, tmp_path, capsys):
        import json

        stats_path = tmp_path / "stats.json"
        code = main(
            ["augment", "--scale", "tiny", "--stats-json", str(stats_path)]
        )
        assert code == 0
        capsys.readouterr()
        payload = json.loads(stats_path.read_text())
        assert payload["format"] == "repro-obs-stats-v1"
        assert payload["timer_calls"]["extract"] == payload["histograms"]["extract"]["count"]
        assert payload["counters"]["vectors_extracted"] > 0
        manifest = payload["manifest"]
        assert manifest["format"] == "repro-run-manifest-v1"
        assert manifest["command"] == "augment"
        assert manifest["scale"] == "tiny"
        assert len(manifest["world_digest"]) == 40
        assert manifest["wall_clock_s"] > 0

    def test_trace_roundtrip(self, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        assert main(["augment", "--scale", "tiny", "--trace", str(trace_path)]) == 0
        capsys.readouterr()
        assert trace_path.exists()

        assert main(["trace", str(trace_path), "--counters"]) == 0
        out = capsys.readouterr().out
        assert "cli.augment" in out
        assert "augment.schedule" in out
        assert "augment.round" in out
        assert "└─" in out  # tree structure rendered
        assert "top" in out and "phases" in out
        assert "vectors_extracted" in out

    def test_trace_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["trace", str(bad)]) == 2
        assert capsys.readouterr().err != ""

    def test_trace_rejects_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        capsys.readouterr()


class TestBenchServe:
    def test_in_process_bench_writes_results(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_serve.json"
        code = main(
            [
                "bench-serve",
                "--scale",
                "tiny",
                "--duration",
                "0.2",
                "--concurrency",
                "2",
                "--model-cache",
                str(tmp_path / "models.pkl"),
                "--output",
                str(out),
            ]
        )
        assert code == 0  # zero 5xx, zero transport errors
        captured = capsys.readouterr()
        assert "req/s" in captured.out
        payload = json.loads(out.read_text())
        assert payload["format"] == "repro-bench-serve-v1"
        assert payload["total_requests"] > 0
        assert payload["total_5xx"] == 0
        names = {row["endpoint"] for row in payload["endpoints"]}
        assert {"healthz", "query", "stream", "classify"} <= names
        for row in payload["endpoints"]:
            assert row["latency_ms"]["p50"] <= row["latency_ms"]["p95"]
        assert (tmp_path / "models.pkl").exists()  # cold fit was persisted


DIRTY_C = "void f(void) {\n    strcpy(dst, src);\n    int _SYS_left = 0;\n}\n"


class TestLint:
    @pytest.fixture()
    def clean_file(self, tmp_path):
        path = tmp_path / "clean.c"
        path.write_text(BEFORE_C)
        return str(path)

    @pytest.fixture()
    def dirty_file(self, tmp_path):
        path = tmp_path / "dirty.c"
        path.write_text(DIRTY_C)
        return str(path)

    def test_clean_file_passes(self, clean_file, capsys):
        assert main(["lint", clean_file]) == 0
        assert "0 finding" in capsys.readouterr().out

    def test_gate_finding_fails_by_default(self, dirty_file, capsys):
        # The scaffold leak is gate-class; exit code must be 1.
        assert main(["lint", dirty_file]) == 1
        out = capsys.readouterr().out
        assert "scaffold-leak" in out
        assert "dangerous-api" in out

    def test_fail_on_never_always_passes(self, dirty_file, capsys):
        assert main(["lint", dirty_file, "--fail-on", "never"]) == 0
        capsys.readouterr()

    def test_fail_on_warning_includes_warnings(self, tmp_path, capsys):
        path = tmp_path / "warn.c"
        path.write_text("void f(void) {\n    strcpy(dst, src);\n}\n")
        assert main(["lint", str(path)]) == 0  # warning only
        assert main(["lint", str(path), "--fail-on", "warning"]) == 1
        capsys.readouterr()

    def test_json_format_parses(self, dirty_file, capsys):
        import json

        assert main(["lint", dirty_file, "--fail-on", "never", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-lint-report-v1"
        checkers = {f["checker"] for fr in payload["files"] for f in fr["findings"]}
        assert "scaffold-leak" in checkers

    def test_patch_directory_lints_fragments(self, patch_file, tmp_path, capsys):
        assert main(["lint", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        # Fragment paths are namespaced as <patch-path>:<file-path>.
        assert "fix.patch" in out or "0 finding" in out

    def test_output_file_written(self, clean_file, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main(
            ["lint", clean_file, "--format", "json", "--output", str(report_path)]
        )
        assert code == 0
        assert report_path.exists()
        capsys.readouterr()

    def test_lint_stats_json(self, dirty_file, tmp_path, capsys):
        import json

        stats_path = tmp_path / "lint-stats.json"
        code = main(
            ["lint", dirty_file, "--fail-on", "never", "--stats-json", str(stats_path)]
        )
        assert code == 0
        capsys.readouterr()
        payload = json.loads(stats_path.read_text())
        assert payload["counters"]["files_linted"] == 1
        assert payload["timer_calls"]["lint"] == 1
        assert payload["manifest"]["command"] == "lint"
        assert payload["manifest"]["files_linted"] == 1

    def test_gate_mode_builds_world(self, capsys):
        import json

        code = main(
            [
                "lint",
                "--scale",
                "tiny",
                "--seed",
                "2021",
                "--variant-sample",
                "2",
                "--format",
                "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["gate"]["passed"] is True
        assert payload["gate"]["variant_failures"] == 0

    def test_baseline_suppresses_known_findings(self, dirty_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint",
                    dirty_file,
                    "--fail-on",
                    "never",
                    "--format",
                    "json",
                    "--output",
                    str(baseline),
                ]
            )
            == 0
        )
        capsys.readouterr()
        # With every current finding recorded, the gate-class leak no
        # longer fails the run and the report is clean.
        assert main(["lint", dirty_file, "--baseline", str(baseline)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_baseline_does_not_mask_new_findings(self, dirty_file, tmp_path, capsys):
        from pathlib import Path

        baseline = tmp_path / "baseline.json"
        main(["lint", dirty_file, "--fail-on", "never", "--format", "json",
              "--output", str(baseline)])
        capsys.readouterr()
        # A new gate-class violation after the baseline was recorded.
        text = Path(dirty_file).read_text()
        Path(dirty_file).write_text(text.replace("{\n", "{\n    int _SYS_fresh = 1;\n", 1))
        assert main(["lint", dirty_file, "--baseline", str(baseline)]) == 1
        assert "_SYS_fresh" in capsys.readouterr().out

    def test_missing_baseline_errors_cleanly(self, dirty_file, tmp_path, capsys):
        code = main(["lint", dirty_file, "--baseline", str(tmp_path / "nope.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestAutofix:
    @pytest.fixture(scope="class")
    def cache_dir(self, tmp_path_factory):
        # One TINY world shared by every test in the class.
        return str(tmp_path_factory.mktemp("world-cache"))

    def _run(self, cache_dir, *extra):
        return main(
            ["autofix", "--scale", "tiny", "--world-cache", cache_dir,
             "--max-files", "10", *extra]
        )

    def test_round_trip_with_report_and_artifacts(self, cache_dir, tmp_path, capsys):
        import json

        report_path = tmp_path / "autofix-report.json"
        artifacts = tmp_path / "artifacts"
        code = self._run(
            cache_dir,
            "--fail-under", "0.9",
            "--report", str(report_path),
            "--artifacts", str(artifacts),
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verified repairs" in out
        payload = json.loads(report_path.read_text())
        assert payload["format"] == "repro-autofix-manifest-v1"
        assert payload["summary"]["verifier_crashes"] == 0
        assert payload["summary"]["repair_rate"] >= 0.9
        per_patch = sorted(artifacts.glob("autofix-*.json"))
        assert len(per_patch) == payload["summary"]["plants_applied"]
        one = json.loads(per_patch[0].read_text())
        assert "elapsed_ms" in one and "diff" in one

    def test_fail_under_breach_exits_nonzero(self, cache_dir, capsys):
        code = self._run(cache_dir, "--kinds", "dangerous-api", "--fail-under", "1.1")
        assert code == 1
        assert "below" in capsys.readouterr().err

    def test_unknown_kind_exits_2(self, cache_dir, capsys):
        code = self._run(cache_dir, "--kinds", "bogus")
        assert code == 2
        assert "unknown plant kind" in capsys.readouterr().err

    def test_stats_json_carries_the_loop_counters(self, cache_dir, tmp_path, capsys):
        import json

        stats_path = tmp_path / "stats.json"
        code = self._run(cache_dir, "--stats-json", str(stats_path))
        assert code == 0
        capsys.readouterr()
        payload = json.loads(stats_path.read_text())
        assert payload["counters"]["autofix_plants"] == 10
        assert payload["counters"]["autofix_accepted"] >= 9
        assert payload["manifest"]["command"] == "autofix"
        assert payload["manifest"]["repair_rate"] >= 0.9
