"""Tests for token abstraction (features 49-56 substrate)."""

from repro.lang import abstract_line, abstract_token_texts


class TestAbstraction:
    def test_variable_becomes_var(self):
        assert abstract_token_texts("x = y;") == ["VAR", "=", "VAR", ";"]

    def test_call_becomes_func(self):
        assert abstract_token_texts("foo(x)") == ["FUNC", "(", "VAR", ")"]

    def test_literals(self):
        assert abstract_token_texts('42 "s" \'c\'') == ["NUM", "STR", "CHR"]

    def test_keywords_preserved(self):
        out = abstract_token_texts("if (x) return 0;")
        assert out == ["if", "(", "VAR", ")", "return", "NUM", ";"]

    def test_operators_preserved(self):
        out = abstract_token_texts("a && b || !c")
        assert out == ["VAR", "&&", "VAR", "||", "!", "VAR"]

    def test_paper_listing_line(self):
        assert abstract_line("if (byte[i] & 0x40 && i > 0)") == (
            "if ( VAR [ VAR ] & NUM && VAR > NUM )"
        )

    def test_renaming_invariance(self):
        a = abstract_line("if (count > limit) return -1;")
        b = abstract_line("if (size > maxlen) return -2;")
        assert a == b

    def test_call_vs_variable_distinguished(self):
        a = abstract_token_texts("free(p);")
        b = abstract_token_texts("freed = p;")
        assert a[0] == "FUNC"
        assert b[0] == "VAR"

    def test_preprocessor_collapsed(self):
        assert abstract_token_texts("#include <x.h>\ny;")[0] == "#PP"

    def test_comments_dropped(self):
        assert abstract_token_texts("x; // comment") == ["VAR", ";"]

    def test_empty(self):
        assert abstract_token_texts("") == []
        assert abstract_line("") == ""
