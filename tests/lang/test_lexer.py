"""Tests for the C/C++ lexer."""

import pytest

from repro.errors import LexError
from repro.lang import Token, TokenKind, code_tokens, split_tokens_by_line, tokenize


def kinds(source, **kw):
    return [t.kind for t in tokenize(source, **kw)]


def texts(source, **kw):
    return [t.text for t in tokenize(source, **kw)]


class TestBasicTokens:
    def test_keywords_vs_identifiers(self):
        toks = tokenize("int foo = sizeof(bar);")
        assert toks[0].kind is TokenKind.KEYWORD
        assert toks[1].kind is TokenKind.IDENTIFIER
        assert toks[3].kind is TokenKind.KEYWORD  # sizeof
        assert toks[5].kind is TokenKind.IDENTIFIER

    def test_cpp_keywords(self):
        toks = tokenize("new delete nullptr")
        assert all(t.kind is TokenKind.KEYWORD for t in toks)

    def test_punctuation(self):
        assert texts("(){}[];") == ["(", ")", "{", "}", "[", "]", ";"]
        assert all(k is TokenKind.PUNCT for k in kinds("(){}[];"))

    def test_operators_longest_match(self):
        assert texts("a <<= b >> c != d") == ["a", "<<=", "b", ">>", "c", "!=", "d"]

    def test_arrow_and_scope(self):
        assert texts("p->x; A::b") == ["p", "->", "x", ";", "A", "::", "b"]

    def test_ellipsis(self):
        assert "..." in texts("f(int, ...)")


class TestNumbers:
    @pytest.mark.parametrize(
        "lit",
        ["0", "42", "0x1F", "0XDEAD", "1.5", "1.5f", "2e10", "1.5e-3", "10UL", "0x40", "3."],
    )
    def test_numeric_literals(self, lit):
        toks = tokenize(lit)
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.NUMBER
        assert toks[0].text == lit

    def test_member_access_not_float(self):
        assert texts("a.b") == ["a", ".", "b"]


class TestStringsAndChars:
    def test_string(self):
        toks = tokenize('"hello world"')
        assert toks[0].kind is TokenKind.STRING

    def test_string_with_escapes(self):
        toks = tokenize(r'"a\"b\\c"')
        assert len(toks) == 1
        assert toks[0].text == r'"a\"b\\c"'

    def test_char_literal(self):
        toks = tokenize("'x'")
        assert toks[0].kind is TokenKind.CHAR

    def test_prefixed_string(self):
        toks = tokenize('L"wide"')
        assert toks[0].kind is TokenKind.STRING

    def test_unterminated_string_closed(self):
        toks = tokenize('"abc\nint x;')
        assert toks[0].kind is TokenKind.STRING
        assert toks[0].text == '"abc"'
        assert any(t.text == "int" for t in toks)

    def test_empty_string(self):
        assert tokenize('""')[0].text == '""'


class TestComments:
    def test_line_comment_dropped_by_default(self):
        assert texts("x; // note") == ["x", ";"]

    def test_line_comment_kept(self):
        toks = tokenize("x; // note", keep_comments=True)
        assert toks[-1].kind is TokenKind.COMMENT

    def test_block_comment_multiline(self):
        toks = tokenize("a /* one\ntwo */ b", keep_comments=True)
        assert [t.kind for t in toks] == [
            TokenKind.IDENTIFIER,
            TokenKind.COMMENT,
            TokenKind.IDENTIFIER,
        ]
        assert toks[2].line == 2

    def test_unterminated_block_comment(self):
        toks = tokenize("a /* runs off", keep_comments=True)
        assert toks[-1].kind is TokenKind.COMMENT

    def test_division_not_comment(self):
        assert texts("a / b") == ["a", "/", "b"]


class TestPreprocessor:
    def test_include_directive(self):
        toks = tokenize("#include <stdio.h>\nint x;")
        assert toks[0].kind is TokenKind.PREPROCESSOR
        assert toks[0].text == "#include <stdio.h>"

    def test_directive_with_continuation(self):
        src = "#define MAX(a, b) \\\n    ((a) > (b) ? (a) : (b))\nint y;"
        toks = tokenize(src)
        assert toks[0].kind is TokenKind.PREPROCESSOR
        assert "? (a) : (b)" in toks[0].text
        assert toks[1].text == "int"

    def test_indented_directive(self):
        toks = tokenize("  #ifdef FOO\nint x;\n  #endif\n")
        assert sum(1 for t in toks if t.kind is TokenKind.PREPROCESSOR) == 2

    def test_hash_mid_line_is_punct(self):
        toks = tokenize("a # b")
        assert toks[1].kind is TokenKind.PUNCT


class TestPositions:
    def test_line_numbers(self):
        toks = tokenize("a\nb\nc")
        assert [t.line for t in toks] == [1, 2, 3]

    def test_columns(self):
        toks = tokenize("ab cd")
        assert toks[0].col == 1
        assert toks[1].col == 4

    def test_newline_tokens_optional(self):
        toks = tokenize("a\nb", keep_newlines=True)
        assert toks[1].kind is TokenKind.NEWLINE


class TestStrictMode:
    def test_strict_raises_on_garbage(self):
        with pytest.raises(LexError):
            tokenize("int a = `bad`;", strict=True)

    def test_lenient_passes_through(self):
        toks = tokenize("int a = `bad`;")
        assert any(t.text == "`" for t in toks)


class TestHelpers:
    def test_code_tokens_drops_comments(self):
        toks = code_tokens("a; // hi\nb;")
        assert all(t.kind is not TokenKind.COMMENT for t in toks)

    def test_split_by_line(self):
        by_line = split_tokens_by_line(tokenize("a b\nc"))
        assert [t.text for t in by_line[1]] == ["a", "b"]
        assert [t.text for t in by_line[2]] == ["c"]

    def test_empty_source(self):
        assert tokenize("") == []

    def test_token_is_identifier_helper(self):
        tok = Token(TokenKind.IDENTIFIER, "foo")
        assert tok.is_identifier()
        assert tok.is_identifier("foo")
        assert not tok.is_identifier("bar")
