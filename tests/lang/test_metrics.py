"""Tests for the syntactic fragment counters (Table I substrate)."""

from repro.lang import count_fragment, count_lines


class TestIfCounting:
    def test_single_if(self):
        assert count_fragment("if (x) y = 1;").if_statements == 1

    def test_else_if_counts_once_per_if(self):
        assert count_fragment("if (a) x; else if (b) y;").if_statements == 2

    def test_no_if(self):
        assert count_fragment("x = y + 1;").if_statements == 0


class TestLoopCounting:
    def test_for(self):
        assert count_fragment("for (i = 0; i < n; i++) x++;").loops == 1

    def test_while(self):
        assert count_fragment("while (x) x--;").loops == 1

    def test_do_while_counts_once(self):
        counts = count_fragment("do { x--; } while (x);")
        assert counts.loops == 1

    def test_separate_while_after_block_still_skipped(self):
        # Known approximation: 'while' directly after '}' is treated as a
        # do-while tail.  Document the behaviour.
        counts = count_fragment("if (a) { b(); } while (x) x--;")
        assert counts.loops == 0


class TestCallCounting:
    def test_simple_call(self):
        counts = count_fragment("foo(a, b);")
        assert counts.function_calls == 1
        assert "foo" in counts.functions

    def test_control_keywords_not_calls(self):
        counts = count_fragment("if (x) { while (y) { f(z); } }")
        assert counts.function_calls == 1

    def test_sizeof_not_call(self):
        assert count_fragment("n = sizeof(x);").function_calls == 0

    def test_distinct_functions(self):
        counts = count_fragment("a(); b(); a();")
        assert counts.function_calls == 3
        assert counts.function_count == 2


class TestOperatorCounting:
    def test_arithmetic(self):
        counts = count_fragment("x = a + b - c * d / e % f;")
        # '*' after an identifier counts as multiplication.
        assert counts.arithmetic_operators == 5

    def test_relational(self):
        assert count_fragment("a < b; c >= d; e == f; g != h;").relational_operators == 4

    def test_logical(self):
        assert count_fragment("a && b || !c").logical_operators == 3

    def test_bitwise(self):
        counts = count_fragment("x = a | b ^ c; y = d << 2; z = e >> 1; w = ~f;")
        assert counts.bitwise_operators == 5

    def test_binary_and_vs_address_of(self):
        assert count_fragment("x = a & b;").bitwise_operators == 1
        assert count_fragment("f(&a);").bitwise_operators == 0

    def test_deref_vs_multiply(self):
        assert count_fragment("x = a * b;").arithmetic_operators == 1
        assert count_fragment("x = *p;").arithmetic_operators == 0

    def test_increment_decrement(self):
        assert count_fragment("i++; j--;").arithmetic_operators == 2


class TestMemoryCounting:
    def test_malloc_free(self):
        counts = count_fragment("p = malloc(n); free(p);")
        assert counts.memory_operators == 2

    def test_mem_functions(self):
        counts = count_fragment("memcpy(d, s, n); memset(d, 0, n);")
        assert counts.memory_operators == 2

    def test_new_delete(self):
        counts = count_fragment("p = new Foo(); delete p;")
        assert counts.memory_operators == 2

    def test_kernel_allocators(self):
        assert count_fragment("p = kmalloc(n, GFP_KERNEL); kfree(p);").memory_operators == 2


class TestVariableCounting:
    def test_distinct_variables(self):
        counts = count_fragment("x = y + x;")
        assert counts.variables == {"x", "y"}

    def test_called_names_not_variables(self):
        counts = count_fragment("foo(x);")
        assert counts.variables == {"x"}

    def test_memory_functions_not_variables(self):
        assert "malloc" not in count_fragment("p = malloc(4);").variables


class TestJumps:
    def test_jump_keywords(self):
        counts = count_fragment("goto out; break; continue; return 0;")
        assert counts.jumps == 4


class TestAggregation:
    def test_count_lines_joins(self):
        # A condition split across lines still counts as one if.
        counts = count_lines(["if (a &&", "    b) {", "}"])
        assert counts.if_statements == 1
        assert counts.logical_operators == 1

    def test_merge(self):
        a = count_fragment("if (x) foo();")
        b = count_fragment("while (y) bar();")
        merged = a.merge(b)
        assert merged.if_statements == 1
        assert merged.loops == 1
        assert merged.function_calls == 2
        assert merged.functions == {"foo", "bar"}

    def test_empty_fragment(self):
        counts = count_fragment("")
        assert counts.if_statements == 0
        assert counts.variable_count == 0
        assert counts.tokens == 0
