"""Tests for the lightweight C parser."""

import pytest

from repro.lang import (
    BlockStmt,
    DoWhileStmt,
    ForStmt,
    GotoStmt,
    IfStmt,
    LabelStmt,
    ReturnStmt,
    SwitchStmt,
    WhileStmt,
    find_if_statements,
    parse_function_body,
    parse_translation_unit,
    walk,
)

SAMPLE = """#include <stdio.h>

static int helper(int x) {
    if (x > 0 && x < 100) {
        return x * 2;
    } else if (x == 0)
        return 0;
    return -1;
}

int main(int argc, char **argv)
{
    int total = 0;
    char *buf = malloc(64);
    if (!buf)
        return 1;
    for (int i = 0; i < argc; i++) {
        total += helper(i);
        while (total > 1000) {
            total /= 2;
        }
    }
    switch (total) {
    case 0:
        break;
    default:
        printf("%d", total);
    }
    do {
        total--;
    } while (total > 10);
out:
    free(buf);
    return total;
}
"""


@pytest.fixture(scope="module")
def unit():
    return parse_translation_unit(SAMPLE, "sample.c")


class TestFunctions:
    def test_two_functions_found(self, unit):
        assert [f.name for f in unit.functions] == ["helper", "main"]

    def test_spans(self, unit):
        helper = unit.functions[0]
        assert helper.start_line == 3
        assert helper.end_line == 9

    def test_params_text(self, unit):
        assert unit.functions[1].params_text == "(int argc, char **argv)"

    def test_return_type(self, unit):
        assert unit.functions[0].return_type_text == "static int"

    def test_function_at(self, unit):
        assert unit.function_at(5).name == "helper"
        assert unit.function_at(20).name == "main"
        assert unit.function_at(1) is None


class TestIfStatements:
    def test_all_ifs_found(self, unit):
        ifs = find_if_statements(unit)
        assert len(ifs) == 3

    def test_conditions_extracted(self, unit):
        conds = [i.cond.text for i in find_if_statements(unit)]
        assert "x > 0 && x < 100" in conds
        assert "x == 0" in conds
        assert "!buf" in conds

    def test_else_if_nested(self, unit):
        outer = find_if_statements(unit)[0]
        assert isinstance(outer.orelse, IfStmt)

    def test_braced_flag(self, unit):
        ifs = find_if_statements(unit)
        assert ifs[0].then_braced
        assert not ifs[2].then_braced

    def test_condition_coordinates_align(self, unit):
        lines = SAMPLE.splitlines()
        for stmt in find_if_statements(unit):
            assert lines[stmt.cond_open_line - 1][stmt.cond_open_col - 1] == "("
            assert lines[stmt.cond_close_line - 1][stmt.cond_close_col - 1] == ")"


class TestOtherStatements:
    def test_loops_found(self, unit):
        nodes = [n for f in unit.functions for n in walk(f)]
        assert sum(1 for n in nodes if isinstance(n, ForStmt)) == 1
        assert sum(1 for n in nodes if isinstance(n, WhileStmt)) == 1
        assert sum(1 for n in nodes if isinstance(n, DoWhileStmt)) == 1

    def test_switch_found(self, unit):
        nodes = [n for f in unit.functions for n in walk(f)]
        switches = [n for n in nodes if isinstance(n, SwitchStmt)]
        assert len(switches) == 1
        assert switches[0].cond.text == "total"

    def test_label_found(self, unit):
        nodes = [n for f in unit.functions for n in walk(f)]
        labels = [n for n in nodes if isinstance(n, LabelStmt)]
        assert any(l.name == "out" for l in labels)

    def test_returns_found(self, unit):
        nodes = [n for f in unit.functions for n in walk(f)]
        returns = [n for n in nodes if isinstance(n, ReturnStmt)]
        assert len(returns) >= 4


class TestGoto:
    def test_goto_parsed(self):
        unit = parse_translation_unit("void f(void) {\n    if (1)\n        goto out;\nout:\n    return;\n}\n")
        gotos = [n for n in walk(unit.functions[0]) if isinstance(n, GotoStmt)]
        assert len(gotos) == 1
        assert gotos[0].label == "out"


class TestParseFunctionBody:
    def test_block_parse(self):
        block = parse_function_body("{ int x = 1; if (x) x = 2; }")
        assert isinstance(block, BlockStmt)
        assert len(block.stmts) == 2

    def test_raises_without_brace(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_function_body("int x = 1;")


class TestRobustness:
    def test_struct_definitions_skipped(self):
        src = "struct point { int x; int y; };\n\nint get_x(struct point *p) {\n    return p->x;\n}\n"
        unit = parse_translation_unit(src)
        assert [f.name for f in unit.functions] == ["get_x"]

    def test_prototypes_not_definitions(self):
        src = "int foo(int x);\nint foo(int x) {\n    return x;\n}\n"
        unit = parse_translation_unit(src)
        assert len(unit.functions) == 1

    def test_global_declarations_skipped(self):
        src = "static int counter = 0;\nchar *names[] = { \"a\", \"b\" };\nvoid f(void) {\n    counter++;\n}\n"
        unit = parse_translation_unit(src)
        assert [f.name for f in unit.functions] == ["f"]

    def test_empty_file(self):
        unit = parse_translation_unit("")
        assert unit.functions == []

    def test_preprocessor_heavy_file(self):
        src = "#ifdef A\nint f(void) {\n#else\nint f(int x) {\n#endif\n    return 0;\n}\n"
        # Must not raise; structure is best-effort.
        parse_translation_unit(src)

    def test_unbalanced_braces_no_crash(self):
        parse_translation_unit("int f(void) {\n    if (x) {\n    return 0;\n")

    def test_multiline_condition(self):
        src = "int f(int a, int b) {\n    if (a > 0 &&\n        b < 10) {\n        return 1;\n    }\n    return 0;\n}\n"
        unit = parse_translation_unit(src)
        stmt = find_if_statements(unit)[0]
        assert "a > 0" in stmt.cond.text
        assert "b < 10" in stmt.cond.text
        assert stmt.cond_open_line == 2
        assert stmt.cond_close_line == 3

    def test_span_contains(self):
        unit = parse_translation_unit(SAMPLE)
        fn = unit.functions[0]
        assert fn.span_contains(fn.start_line)
        assert fn.span_contains(fn.end_line)
        assert not fn.span_contains(fn.end_line + 1)
