"""Tests for the observability registry."""

import time

from repro.obs import ObsRegistry


class TestObsRegistry:
    def test_timer_accumulates(self):
        obs = ObsRegistry()
        for _ in range(3):
            with obs.timer("phase"):
                time.sleep(0.001)
        assert obs.seconds("phase") >= 0.003
        assert "3 calls" in obs.report()

    def test_timer_records_on_exception(self):
        obs = ObsRegistry()
        try:
            with obs.timer("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert obs.seconds("boom") > 0.0

    def test_counters(self):
        obs = ObsRegistry()
        obs.add("cells")
        obs.add("cells", 41)
        assert obs.count("cells") == 42
        assert obs.counters == {"cells": 42}

    def test_missing_names_are_zero(self):
        obs = ObsRegistry()
        assert obs.seconds("nope") == 0.0
        assert obs.count("nope") == 0

    def test_reset(self):
        obs = ObsRegistry()
        obs.add("x")
        with obs.timer("t"):
            pass
        obs.reset()
        assert obs.counters == {}
        assert obs.timers == {}

    def test_report_empty(self):
        assert "no observations" in ObsRegistry().report()

    def test_report_sections(self):
        obs = ObsRegistry()
        obs.add("vectors_extracted", 7)
        with obs.timer("distance"):
            pass
        report = obs.report()
        assert "phase timings:" in report
        assert "counters:" in report
        assert "vectors_extracted" in report
        assert "distance" in report

    def test_copies_are_snapshots(self):
        obs = ObsRegistry()
        obs.add("n")
        snapshot = obs.counters
        obs.add("n")
        assert snapshot == {"n": 1}
        assert obs.count("n") == 2
