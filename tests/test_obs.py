"""Tests for the observability registry."""

import json
import pickle
import time

import pytest

from repro.obs import ObsRegistry, ObsSnapshot, histogram_stats


class TestObsRegistry:
    def test_timer_accumulates(self):
        obs = ObsRegistry()
        for _ in range(3):
            with obs.timer("phase"):
                time.sleep(0.001)
        assert obs.seconds("phase") >= 0.003
        assert "3 calls" in obs.report()

    def test_timer_records_on_exception(self):
        obs = ObsRegistry()
        try:
            with obs.timer("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert obs.seconds("boom") > 0.0

    def test_counters(self):
        obs = ObsRegistry()
        obs.add("cells")
        obs.add("cells", 41)
        assert obs.count("cells") == 42
        assert obs.counters == {"cells": 42}

    def test_missing_names_are_zero(self):
        obs = ObsRegistry()
        assert obs.seconds("nope") == 0.0
        assert obs.count("nope") == 0

    def test_reset(self):
        obs = ObsRegistry()
        obs.add("x")
        with obs.timer("t"):
            pass
        obs.reset()
        assert obs.counters == {}
        assert obs.timers == {}

    def test_report_empty(self):
        assert "no observations" in ObsRegistry().report()

    def test_report_sections(self):
        obs = ObsRegistry()
        obs.add("vectors_extracted", 7)
        with obs.timer("distance"):
            pass
        report = obs.report()
        assert "phase timings:" in report
        assert "counters:" in report
        assert "vectors_extracted" in report
        assert "distance" in report

    def test_copies_are_snapshots(self):
        obs = ObsRegistry()
        obs.add("n")
        snapshot = obs.counters
        obs.add("n")
        assert snapshot == {"n": 1}
        assert obs.count("n") == 2

    def test_timer_calls_property(self):
        obs = ObsRegistry()
        for _ in range(3):
            with obs.timer("phase"):
                pass
        assert obs.timer_calls == {"phase": 3}
        assert obs.calls("phase") == 3
        assert obs.calls("nope") == 0


class TestHistograms:
    def test_timer_feeds_histogram(self):
        obs = ObsRegistry()
        for _ in range(5):
            with obs.timer("extract"):
                pass
        hists = obs.histograms
        assert len(hists["extract"]) == 5
        assert all(v >= 0.0 for v in hists["extract"])

    def test_observe_without_timer(self):
        obs = ObsRegistry()
        obs.observe("latency", 0.5)
        obs.observe("latency", 1.5)
        assert obs.histograms == {"latency": [0.5, 1.5]}
        assert obs.timers == {}

    def test_histogram_stats_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]  # 1..100
        stats = histogram_stats(values)
        assert stats["count"] == 100
        assert stats["p50"] == 50.0
        assert stats["p95"] == 95.0
        assert stats["max"] == 100.0
        assert stats["mean"] == pytest.approx(50.5)

    def test_histogram_stats_single_value(self):
        stats = histogram_stats([2.0])
        assert stats == {
            "count": 1, "total": 2.0, "mean": 2.0, "p50": 2.0, "p95": 2.0, "max": 2.0,
        }

    def test_histogram_stats_empty(self):
        assert histogram_stats([])["count"] == 0

    def test_report_includes_quantiles(self):
        obs = ObsRegistry()
        for _ in range(4):
            with obs.timer("extract"):
                pass
        report = obs.report()
        assert "p50=" in report and "p95=" in report and "max=" in report


class TestSpans:
    def test_span_nesting(self):
        obs = ObsRegistry()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            with obs.span("inner"):
                pass
        spans = obs.spans
        assert [s.name for s in spans] == ["outer", "inner", "inner"]
        outer = spans[0]
        assert outer.parent_id is None
        assert all(s.parent_id == outer.span_id for s in spans[1:])
        assert all(s.duration >= 0.0 for s in spans)

    def test_span_attributes(self):
        obs = ObsRegistry()
        with obs.span("augment.round", round=3, set="Set I") as sp:
            sp.attributes["verified"] = 4
        (span,) = obs.spans
        assert span.attributes == {"round": 3, "set": "Set I", "verified": 4}

    def test_span_non_json_attributes_coerced(self):
        obs = ObsRegistry()
        with obs.span("s", obj={1, 2}):
            pass
        (span,) = obs.spans
        assert isinstance(span.attributes["obj"], str)
        json.dumps(span.to_dict())  # must be serializable

    def test_span_feeds_flat_timer(self):
        obs = ObsRegistry()
        with obs.span("phase"):
            time.sleep(0.001)
        assert obs.seconds("phase") >= 0.001
        assert obs.calls("phase") == 1

    def test_timer_does_not_create_span(self):
        obs = ObsRegistry()
        with obs.timer("extract"):
            pass
        assert obs.spans == []

    def test_span_closes_on_exception(self):
        obs = ObsRegistry()
        try:
            with obs.span("outer"):
                with obs.span("boom"):
                    raise RuntimeError
        except RuntimeError:
            pass
        spans = obs.spans
        assert all(s.duration >= 0.0 for s in spans)
        # The stack unwound: a new span is a root again.
        with obs.span("after"):
            pass
        assert obs.spans[-1].parent_id is None

    def test_sibling_spans_share_parent(self):
        obs = ObsRegistry()
        with obs.span("root"):
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        root, a, b = obs.spans
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id


class TestDisabled:
    def test_disabled_records_nothing(self):
        obs = ObsRegistry(enabled=False)
        with obs.timer("t"):
            pass
        with obs.span("s", k=1) as sp:
            assert sp is None
        obs.add("c")
        obs.observe("h", 1.0)
        assert obs.timers == {}
        assert obs.counters == {}
        assert obs.histograms == {}
        assert obs.spans == []

    def test_disabled_still_runs_body(self):
        obs = ObsRegistry(enabled=False)
        ran = []
        with obs.timer("t"):
            ran.append(1)
        with obs.span("s"):
            ran.append(2)
        assert ran == [1, 2]


class TestMerge:
    def test_merge_adds_everything(self):
        a, b = ObsRegistry(), ObsRegistry()
        with a.timer("extract"):
            pass
        a.add("hits", 2)
        with b.timer("extract"):
            pass
        with b.timer("lint"):
            pass
        b.add("hits", 3)
        a.merge(b)
        assert a.calls("extract") == 2
        assert a.calls("lint") == 1
        assert a.count("hits") == 5
        assert len(a.histograms["extract"]) == 2

    def test_merge_accepts_registry_or_snapshot(self):
        a, b = ObsRegistry(), ObsRegistry()
        b.add("n", 1)
        a.merge(b)
        a.merge(b.snapshot())
        assert a.count("n") == 2

    def test_merge_grafts_spans_under_active(self):
        worker = ObsRegistry()
        with worker.span("chunk"):
            with worker.span("item"):
                pass
        parent = ObsRegistry()
        with parent.span("pool"):
            parent.merge(worker.snapshot())
        by_name = {s.name: s for s in parent.spans}
        assert by_name["chunk"].parent_id == by_name["pool"].span_id
        assert by_name["item"].parent_id == by_name["chunk"].span_id

    def test_merge_remaps_span_ids_uniquely(self):
        worker = ObsRegistry()
        with worker.span("w"):
            pass
        parent = ObsRegistry()
        with parent.span("p"):
            pass
        parent.merge(worker.snapshot())
        parent.merge(worker.snapshot())
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids)) == 3

    def test_snapshot_is_deep(self):
        obs = ObsRegistry()
        obs.add("n")
        with obs.timer("t"):
            pass
        snap = obs.snapshot()
        obs.add("n")
        with obs.timer("t"):
            pass
        assert snap.counters == {"n": 1}
        assert snap.timer_calls == {"t": 1}
        assert len(snap.histograms["t"]) == 1

    def test_snapshot_pickles(self):
        obs = ObsRegistry()
        with obs.span("s", k=1):
            with obs.timer("t"):
                pass
        obs.add("c", 3)
        snap = pickle.loads(pickle.dumps(obs.snapshot()))
        assert isinstance(snap, ObsSnapshot)
        assert snap.counters == {"c": 3}
        assert snap.spans[0].name == "s"


class TestExport:
    def test_to_dict_shape(self):
        obs = ObsRegistry()
        with obs.span("phase"):
            with obs.timer("extract"):
                pass
        obs.add("hits", 2)
        payload = obs.to_dict()
        assert payload["format"] == "repro-obs-stats-v1"
        assert payload["timer_calls"]["extract"] == 1
        assert payload["counters"] == {"hits": 2}
        assert payload["histograms"]["extract"]["count"] == 1
        assert payload["n_spans"] == 1
        json.dumps(payload)

    def test_export_trace_roundtrip(self, tmp_path):
        obs = ObsRegistry()
        with obs.span("root", scale="tiny"):
            with obs.span("child"):
                pass
        obs.add("hits")
        path = obs.export_trace(tmp_path / "t.jsonl", manifest={"seed": 7})
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "manifest"
        assert lines[0]["seed"] == 7
        spans = [rec for rec in lines if rec["type"] == "span"]
        assert [s["name"] for s in spans] == ["root", "child"]
        assert spans[1]["parent"] == spans[0]["id"]
        assert lines[-1]["type"] == "summary"
        assert lines[-1]["counters"] == {"hits": 1}

    def test_export_trace_without_manifest(self, tmp_path):
        obs = ObsRegistry()
        path = obs.export_trace(tmp_path / "sub" / "t.jsonl")
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"type": "manifest"}
