"""Tests for distribution statistics."""

import pytest

from repro.analysis import (
    distribution_table,
    gini_coefficient,
    head_share,
    rank_types,
    total_variation_distance,
    type_distribution,
)


class TestTypeDistribution:
    def test_normalized(self):
        dist = type_distribution([1, 1, 8, 8, 8, 3])
        assert dist[8] == pytest.approx(0.5)
        assert dist[1] == pytest.approx(2 / 6)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_all_twelve_keys_present(self):
        dist = type_distribution([1])
        assert sorted(dist) == list(range(1, 13))
        assert dist[12] == 0.0

    def test_empty_input(self):
        dist = type_distribution([])
        assert all(v == 0.0 for v in dist.values())


class TestRanking:
    def test_rank_types(self):
        dist = type_distribution([8, 8, 8, 3, 3, 1])
        assert rank_types(dist)[:3] == [8, 3, 1]

    def test_ties_broken_by_id(self):
        dist = type_distribution([2, 1])
        assert rank_types(dist)[:2] == [1, 2]


class TestHeadShare:
    def test_top3(self):
        dist = type_distribution([8] * 5 + [3] * 3 + [1] * 2 + [2])
        assert head_share(dist, 3) == pytest.approx(10 / 11)

    def test_uniform_head(self):
        dist = {t: 1 / 12 for t in range(1, 13)}
        assert head_share(dist, 3) == pytest.approx(0.25)


class TestGini:
    def test_uniform_is_zero(self):
        dist = {t: 1 / 12 for t in range(1, 13)}
        assert gini_coefficient(dist) == pytest.approx(0.0, abs=1e-9)

    def test_concentration_increases_gini(self):
        spread = type_distribution([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12])
        concentrated = type_distribution([8] * 20 + [1])
        assert gini_coefficient(concentrated) > gini_coefficient(spread)

    def test_empty(self):
        assert gini_coefficient({}) == 0.0


class TestTvDistance:
    def test_identical_is_zero(self):
        a = type_distribution([1, 2, 3])
        assert total_variation_distance(a, a) == pytest.approx(0.0)

    def test_disjoint_is_one(self):
        a = type_distribution([1, 1])
        b = type_distribution([2, 2])
        assert total_variation_distance(a, b) == pytest.approx(1.0)

    def test_symmetry(self):
        a = type_distribution([1, 2, 8, 8])
        b = type_distribution([3, 8])
        assert total_variation_distance(a, b) == total_variation_distance(b, a)


class TestRendering:
    def test_table_lists_all_types(self):
        text = distribution_table(type_distribution([8, 8, 1]), "Title")
        assert "Title" in text
        assert "add or change function calls" in text
        assert text.count("\n") >= 12
