"""Structural tests for the experiment harnesses at TINY scale.

These assert protocol structure and qualitative shape, not exact numbers —
the TINY world is too small for stable ML metrics (SMALL/MEDIUM benches
measure those).
"""

import pytest

from repro.analysis import (
    run_fig6,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)


class TestExperimentWorld:
    def test_nvd_seed_nonempty(self, experiment_world):
        assert len(experiment_world.nvd_seed_shas) > 0

    def test_seed_shas_are_crawled_not_ground_truth(self, experiment_world):
        # The seed comes from the crawler, so missing-link CVEs are absent.
        assert len(experiment_world.nvd_seed_shas) <= len(experiment_world.world.nvd_shas())

    def test_wild_pool_excludes_seed(self, experiment_world):
        pool = experiment_world.wild_pool(100)
        assert not set(pool) & set(experiment_world.nvd_seed_shas)

    def test_wild_pool_exclusions_respected(self, experiment_world):
        first = experiment_world.wild_pool(50)
        second = experiment_world.wild_pool(50, exclude=set(first), seed=1)
        assert not set(first) & set(second)

    def test_nonsec_sample_is_clean(self, experiment_world):
        for sha in experiment_world.ground_truth_nonsec(40):
            assert not experiment_world.world.label(sha).is_security

    def test_disk_cache_round_trip(self, tmp_path):
        from repro.analysis.experiments import TINY, ExperimentWorld

        a = ExperimentWorld.cached(TINY, seed=7, cache_dir=tmp_path)
        b = ExperimentWorld.cached(TINY, seed=7, cache_dir=tmp_path)
        assert a.nvd_seed_shas == b.nvd_seed_shas
        assert (tmp_path / f"expworld_tiny_{TINY.n_commits}_7.pkl").exists()


class TestTable2:
    def test_five_rounds(self, experiment_world):
        outcome = run_table2(experiment_world)
        assert len(outcome.rounds) == 5
        assert [r.set_name for r in outcome.rounds] == [
            "Set I", "Set I", "Set I", "Set II", "Set III",
        ]

    def test_all_found_patches_are_security(self, experiment_world):
        outcome = run_table2(experiment_world)
        nvd = set(experiment_world.nvd_seed_shas)
        for sha in outcome.security_shas:
            if sha not in nvd:
                assert experiment_world.world.label(sha).is_security

    def test_beats_base_rate_in_aggregate(self):
        # Base security rate is ~6-9%; nearest link should concentrate it.
        # TINY worlds are noisy enough that individual seeds land anywhere
        # in 0.00-0.17 (SMALL benches measure the paper's Table II yields),
        # so this pins the qualitative claim on a seed with a large NVD
        # seed set rather than on the shared fixture's.
        from repro.analysis.experiments import TINY, ExperimentWorld

        outcome = run_table2(ExperimentWorld(TINY, seed=3))
        candidates = sum(r.candidates for r in outcome.rounds)
        verified = sum(r.verified_security for r in outcome.rounds)
        assert verified / candidates > 0.1


class TestTable3:
    def test_four_methods(self, experiment_world):
        results = run_table3(experiment_world)
        assert [r.method for r in results] == [
            "Brute Force Search",
            "Pseudo Labeling",
            "Uncertainty-based Labeling",
            "Nearest Link Search (ours)",
        ]

    def test_brute_force_candidates_whole_pool(self, experiment_world):
        results = run_table3(experiment_world)
        assert results[0].n_candidates == results[0].pool_size

    def test_nearest_link_beats_brute_force(self):
        # Same TINY-noise caveat as test_beats_base_rate_in_aggregate: the
        # shared fixture's seed draws an NVD seed set too small (6 patches
        # -> 6 candidates) for the proportions to separate reliably.
        from repro.analysis.experiments import TINY, ExperimentWorld

        results = run_table3(ExperimentWorld(TINY, seed=3))
        assert results[3].proportion > results[0].proportion


class TestTable4:
    def test_four_rows(self, experiment_world):
        result = run_table4(experiment_world)
        assert len(result.rows) == 4
        datasets = [r[0] for r in result.rows]
        assert datasets == ["NVD", "NVD", "NVD+Wild", "NVD+Wild"]

    def test_synthetic_rows_report_counts(self, experiment_world):
        result = run_table4(experiment_world)
        assert "Sec" in result.rows[1][1]
        assert result.rows[0][1] == "-"

    def test_metrics_in_range(self, experiment_world):
        for _, _, p, r in run_table4(experiment_world).rows:
            assert 0.0 <= p <= 1.0
            assert 0.0 <= r <= 1.0


class TestTable5:
    def test_distribution_over_twelve_types(self, experiment_world):
        result = run_table5(experiment_world, sample_size=100)
        assert sorted(result.distribution) == list(range(1, 13))
        assert sum(result.distribution.values()) == pytest.approx(1.0)

    def test_sample_capped(self, experiment_world):
        result = run_table5(experiment_world, sample_size=10)
        assert result.n_patches == 10

    def test_table_renders(self, experiment_world):
        assert "sanity checks" in run_table5(experiment_world, 50).table()


class TestFig6:
    def test_distributions_differ(self, experiment_world):
        result = run_fig6(experiment_world)
        assert result.tv_distance > 0.0

    def test_table_renders(self, experiment_world):
        assert "TV distance" in run_fig6(experiment_world).table()


class TestEngineParity:
    """The parallel engine must be bit-identical to the serial path."""

    def test_table3_engine_matches_serial(self, experiment_world):
        serial = run_table3(experiment_world)
        engine = run_table3(experiment_world, ml_workers=2)
        assert serial == engine

    def test_table4_engine_matches_serial(self, experiment_world):
        serial = run_table4(experiment_world, n_seeds=1)
        engine = run_table4(experiment_world, n_seeds=1, ml_workers=2)
        assert serial.rows == engine.rows

    def test_table6_engine_matches_serial(self, experiment_world):
        serial = run_table6(experiment_world)
        engine = run_table6(experiment_world, ml_workers=2)
        assert serial.rows == engine.rows

    def test_world_default_ml_workers_inherited(self, experiment_world):
        # ml_workers=1 runs the engine (token cache, staged fits, synthesis
        # memo) without a pool; rows must still match the legacy path.
        serial = run_table6(experiment_world)
        experiment_world.ml_workers = 1
        try:
            engine = run_table6(experiment_world)
        finally:
            experiment_world.ml_workers = None
        assert engine.rows == serial.rows


class TestModelCacheRouting:
    """Table IV/VI fits go through the persisted FittedModelCache."""

    def test_table6_never_refits_with_unchanged_training_set(self, experiment_world):
        from repro.ml.model_cache import FittedModelCache
        from repro.obs import ObsRegistry

        cache = FittedModelCache(obs=ObsRegistry())
        first = run_table6(experiment_world, model_cache=cache)
        assert cache.obs.count("model_cache_misses") == 4  # RF + RNN per train set
        assert len(cache) == 4

        def total_fits():
            return experiment_world.obs.count("fits_serial") + experiment_world.obs.count(
                "fits_parallel"
            )

        before = total_fits()
        second = run_table6(experiment_world, model_cache=cache)
        assert total_fits() == before  # the re-evaluation trained nothing
        assert cache.obs.count("model_cache_misses") == 4  # no new misses
        assert cache.obs.count("model_cache_hits") == 4
        assert second.rows == first.rows

    def test_table4_cached_rows_match_uncached(self, experiment_world):
        from repro.ml.model_cache import FittedModelCache

        cache = FittedModelCache()
        baseline = run_table4(experiment_world, n_seeds=1)
        warm = run_table4(experiment_world, n_seeds=1, model_cache=cache)
        again = run_table4(experiment_world, n_seeds=1, model_cache=cache)
        assert warm.rows == baseline.rows
        assert again.rows == baseline.rows

    def test_persisted_cache_reloads_across_processes(self, experiment_world, tmp_path):
        from repro.ml.model_cache import FittedModelCache
        from repro.obs import ObsRegistry

        path = tmp_path / "models.pkl"
        cache = FittedModelCache(persist_path=path)
        first = run_table6(experiment_world, model_cache=cache)
        cache.save()
        reloaded = FittedModelCache(persist_path=path, obs=ObsRegistry())
        second = run_table6(experiment_world, model_cache=reloaded)
        assert second.rows == first.rows
        assert reloaded.obs.count("model_cache_misses") == 0


class TestTable6:
    def test_eight_rows(self, experiment_world):
        result = run_table6(experiment_world)
        assert len(result.rows) == 8
        trains = {r[0] for r in result.rows}
        algos = {r[1] for r in result.rows}
        tests = {r[2] for r in result.rows}
        assert trains == {"NVD", "NVD+Wild"}
        assert algos == {"Random Forest", "RNN"}
        assert tests == {"NVD", "Wild"}

    def test_metrics_in_range(self, experiment_world):
        for _, _, _, p, r in run_table6(experiment_world).rows:
            assert 0.0 <= p <= 1.0
            assert 0.0 <= r <= 1.0


class TestCheckDeltaAblation:
    def test_row_structure(self, experiment_world):
        from repro.analysis import run_checkdelta_ablation

        result = run_checkdelta_ablation(experiment_world, seed=0)
        assert len(result.rows) == 6  # 3 feature sets x 2 test sets
        feats = {r[0] for r in result.rows}
        tests = {r[1] for r in result.rows}
        assert feats == {"table1-60", "table1+delta", "delta-16"}
        assert tests == {"NVD", "Wild"}
        for _, _, p, r, f1 in result.rows:
            assert 0.0 <= p <= 1.0
            assert 0.0 <= r <= 1.0
            assert 0.0 <= f1 <= 1.0

    def test_deterministic(self, experiment_world):
        from repro.analysis import run_checkdelta_ablation

        a = run_checkdelta_ablation(experiment_world, seed=0)
        b = run_checkdelta_ablation(experiment_world, seed=0)
        assert a.rows == b.rows

    def test_table_renders(self, experiment_world):
        from repro.analysis import run_checkdelta_ablation

        text = run_checkdelta_ablation(experiment_world, seed=0).table()
        assert "Features" in text
        assert "table1+delta" in text

    def test_delta_matrix_shape(self, experiment_world):
        from repro.staticcheck import DELTA_FEATURE_COUNT

        shas = experiment_world.nvd_seed_shas[:3]
        mat = experiment_world.deltas.matrix(shas)
        assert mat.shape == (len(shas), DELTA_FEATURE_COUNT)
        assert DELTA_FEATURE_COUNT == 16
