"""Tests for hunk assembly and diff generation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffing import diff_lines, diff_texts
from repro.patch import apply_file_diff, parse_file_diffs, render_file_diff

C_FILE = """#include <stdio.h>

static int helper(int x)
{
    int y = x + 1;
    return y;
}

int main(void)
{
    int total = 0;
    total += helper(1);
    total += helper(2);
    total += helper(3);
    total += helper(4);
    total += helper(5);
    return total;
}
"""


class TestDiffTexts:
    def test_identical_yields_no_hunks(self):
        assert diff_texts(C_FILE, C_FILE, "a.c").hunks == ()

    def test_single_change_one_hunk(self):
        new = C_FILE.replace("int y = x + 1;", "int y = x + 2;")
        d = diff_texts(C_FILE, new, "a.c")
        assert len(d.hunks) == 1
        assert d.hunks[0].removed == ("    int y = x + 1;",)
        assert d.hunks[0].added == ("    int y = x + 2;",)

    def test_context_lines_default_three(self):
        new = C_FILE.replace("total += helper(3);", "total += helper(30);")
        hunk = diff_texts(C_FILE, new, "a.c").hunks[0]
        assert len(hunk.context) == 6  # 3 above + 3 below

    def test_nearby_changes_merge_into_one_hunk(self):
        new = C_FILE.replace("helper(2)", "helper(20)").replace("helper(4)", "helper(40)")
        d = diff_texts(C_FILE, new, "a.c")
        assert len(d.hunks) == 1

    def test_distant_changes_stay_separate(self):
        new = C_FILE.replace("int y = x + 1;", "int y = x + 9;").replace(
            "return total;", "return total + 1;"
        )
        d = diff_texts(C_FILE, new, "a.c")
        assert len(d.hunks) == 2

    def test_section_heading_found(self):
        new = C_FILE.replace("total += helper(3);", "total += helper(33);")
        hunk = diff_texts(C_FILE, new, "a.c").hunks[0]
        assert "main" in hunk.section

    def test_new_file(self):
        d = diff_texts("", "a\nb\n", "new.c")
        assert d.is_new_file
        assert d.hunks[0].old_start == 0
        assert d.hunks[0].old_count == 0

    def test_deleted_file(self):
        d = diff_texts("a\nb\n", "", "gone.c")
        assert d.is_deleted_file
        assert d.hunks[0].new_count == 0

    def test_rename_paths(self):
        d = diff_texts("x\n", "y\n", "old.c", new_path="new.c")
        assert d.old_path == "old.c"
        assert d.new_path == "new.c"

    def test_renders_and_reparses(self):
        new = C_FILE.replace("helper(2)", "helper(99)")
        d = diff_texts(C_FILE, new, "a.c")
        assert parse_file_diffs(render_file_diff(d))[0] == d


class TestZeroContext:
    def test_zero_context_pure_insertion(self):
        hunks = diff_lines(["a", "b", "c"], ["a", "b", "x", "c"], context=0)
        assert len(hunks) == 1
        assert hunks[0].old_count == 0
        assert hunks[0].added == ("x",)

    def test_zero_context_pure_removal(self):
        hunks = diff_lines(["a", "b", "c"], ["a", "c"], context=0)
        assert hunks[0].new_count == 0
        assert hunks[0].removed == ("b",)


text_lines = st.lists(
    st.text(alphabet="abcxyz ();=", min_size=0, max_size=12), min_size=0, max_size=25
)


class TestRoundTripProperty:
    @given(old=text_lines, new=text_lines)
    @settings(max_examples=150, deadline=None)
    def test_diff_apply_round_trip(self, old, new):
        old_text = "\n".join(old) + ("\n" if old else "")
        new_text = "\n".join(new) + ("\n" if new else "")
        d = diff_texts(old_text, new_text, "f.c")
        if old_text == new_text:
            assert d.hunks == ()
            return
        assert apply_file_diff(old_text, d) == new_text

    @given(old=text_lines, new=text_lines, ctx=st.integers(min_value=0, max_value=5))
    @settings(max_examples=100, deadline=None)
    def test_round_trip_any_context(self, old, new, ctx):
        hunks = diff_lines(old, new, context=ctx)
        from repro.patch.model import FileDiff

        d = FileDiff("f.c" if old else "", "f.c" if new else "", hunks)
        old_text = "\n".join(old) + ("\n" if old else "")
        new_text = "\n".join(new) + ("\n" if new else "")
        if old == new:
            assert hunks == ()
        else:
            assert apply_file_diff(old_text, d) == new_text

    @given(old=text_lines, new=text_lines)
    @settings(max_examples=100, deadline=None)
    def test_hunk_counts_validate(self, old, new):
        for hunk in diff_lines(old, new):
            hunk.validate()
