"""Tests for the Myers diff algorithm."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffing import EditOp, diff_sequences, lcs_length


def reconstruct_new(old, script):
    """Apply an edit script to rebuild the new sequence."""
    out = []
    for e in script:
        if e.op is EditOp.EQUAL:
            out.append(old[e.old_index])
        elif e.op is EditOp.INSERT:
            out.append(("INS", e.new_index))
    return out


class TestBasics:
    def test_identical(self):
        script = diff_sequences(["a", "b"], ["a", "b"])
        assert all(e.op is EditOp.EQUAL for e in script)

    def test_empty_both(self):
        assert diff_sequences([], []) == []

    def test_all_insert(self):
        script = diff_sequences([], ["a", "b"])
        assert [e.op for e in script] == [EditOp.INSERT, EditOp.INSERT]

    def test_all_delete(self):
        script = diff_sequences(["a", "b"], [])
        assert [e.op for e in script] == [EditOp.DELETE, EditOp.DELETE]

    def test_single_substitution(self):
        script = diff_sequences(["a", "b", "c"], ["a", "X", "c"])
        ops = [e.op for e in script]
        assert ops.count(EditOp.DELETE) == 1
        assert ops.count(EditOp.INSERT) == 1
        assert ops.count(EditOp.EQUAL) == 2

    def test_classic_myers_example(self):
        # ABCABBA -> CBABAC needs edit distance 5.
        script = diff_sequences(list("ABCABBA"), list("CBABAC"))
        d = sum(1 for e in script if e.op is not EditOp.EQUAL)
        assert d == 5

    def test_indices_are_monotone(self):
        script = diff_sequences(list("kitten"), list("sitting"))
        old_idx = [e.old_index for e in script if e.old_index >= 0]
        new_idx = [e.new_index for e in script if e.new_index >= 0]
        assert old_idx == sorted(old_idx)
        assert new_idx == sorted(new_idx)


class TestLcs:
    def test_lcs_simple(self):
        assert lcs_length(list("ABCBDAB"), list("BDCABA")) == 4

    def test_lcs_disjoint(self):
        assert lcs_length(list("abc"), list("xyz")) == 0

    def test_lcs_identical(self):
        assert lcs_length([1, 2, 3], [1, 2, 3]) == 3


lines = st.lists(st.sampled_from(["a", "b", "c", "d", "e"]), max_size=30)


class TestProperties:
    @given(old=lines, new=lines)
    @settings(max_examples=100, deadline=None)
    def test_script_covers_both_sequences(self, old, new):
        script = diff_sequences(old, new)
        old_seen = [e.old_index for e in script if e.op is not EditOp.INSERT]
        new_seen = [e.new_index for e in script if e.op is not EditOp.DELETE]
        assert old_seen == list(range(len(old)))
        assert new_seen == list(range(len(new)))

    @given(old=lines, new=lines)
    @settings(max_examples=100, deadline=None)
    def test_equal_records_match(self, old, new):
        for e in diff_sequences(old, new):
            if e.op is EditOp.EQUAL:
                assert old[e.old_index] == new[e.new_index]

    @given(old=lines, new=lines)
    @settings(max_examples=100, deadline=None)
    def test_edit_count_bounded(self, old, new):
        script = diff_sequences(old, new)
        edits = sum(1 for e in script if e.op is not EditOp.EQUAL)
        assert edits <= len(old) + len(new)
        # Must be at least the length difference.
        assert edits >= abs(len(old) - len(new))

    @given(seq=lines)
    @settings(max_examples=50, deadline=None)
    def test_self_diff_is_all_equal(self, seq):
        assert all(e.op is EditOp.EQUAL for e in diff_sequences(seq, seq))

    @given(old=lines, new=lines)
    @settings(max_examples=100, deadline=None)
    def test_lcs_symmetry(self, old, new):
        assert lcs_length(old, new) == lcs_length(new, old)
