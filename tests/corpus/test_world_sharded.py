"""Sharded world construction: parity, merge protocol, and bugfix pins.

The acceptance bar for ``build_world(config, workers=N)``: the built world
— label order, :meth:`World.digest`, and merged obs counters — must be
bit-identical at every worker count, because every experiment's dataset
views are order-sensitive.  These tests pin that, the per-shard parity
checks of the merge protocol, the pickled-patch-cache fix, and the real
commit weekdays.
"""

from __future__ import annotations

import datetime
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.world import (
    WorldConfig,
    _build_shard,
    _merge_shards,
    _shard_tasks,
    build_world,
)
from repro.errors import CorpusError
from repro.obs import ObsRegistry


def _tiny_config(seed: int) -> WorldConfig:
    """The TINY-preset world configuration (kept in sync by value tests)."""
    return WorldConfig(
        n_commits=450,
        n_repos=6,
        files_per_repo=5,
        security_fraction=0.09,
        nvd_report_fraction=0.33,
        seed=seed,
    )


def _small_config(seed: int) -> WorldConfig:
    return WorldConfig(
        n_commits=4500,
        n_repos=16,
        files_per_repo=5,
        security_fraction=0.09,
        nvd_report_fraction=0.33,
        seed=seed,
    )


def _world_identity(world) -> tuple:
    """Everything parity is asserted on: digest, label order, label values."""
    return (world.digest(), list(world.labels), list(world.labels.values()))


class TestShardedSerialParity:
    @pytest.mark.parametrize("seed", [1, 7, 2021])
    def test_tiny_parity_across_seeds(self, seed):
        serial = build_world(_tiny_config(seed), workers=1)
        sharded = build_world(_tiny_config(seed), workers=2)
        assert _world_identity(serial) == _world_identity(sharded)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [5, 11, 2021])
    def test_small_parity_across_seeds(self, seed):
        serial = build_world(_small_config(seed), workers=1)
        sharded = build_world(_small_config(seed), workers=4)
        assert _world_identity(serial) == _world_identity(sharded)

    def test_worker_count_invariance(self):
        cfg = _tiny_config(2021)
        worlds = [build_world(_tiny_config(2021), workers=w) for w in (1, 2, 4)]
        assert len({w.digest() for w in worlds}) == 1
        assert _world_identity(worlds[0]) == _world_identity(worlds[1])
        assert _world_identity(worlds[0]) == _world_identity(worlds[2])
        assert cfg.n_commits == 450  # the plan covered every configured step
        assert worlds[0].build_stats["attempted"] == cfg.n_commits

    def test_default_workers_matches_legacy_call(self):
        # ``build_world(config)`` (the pre-sharding signature) must replay
        # the identical sharded scheme.
        assert _world_identity(build_world(_tiny_config(3))) == _world_identity(
            build_world(_tiny_config(3), workers=2)
        )


class TestObsCounterParity:
    def test_serial_and_parallel_counters_bit_identical(self):
        serial, parallel = ObsRegistry(), ObsRegistry()
        build_world(_tiny_config(13), workers=1, obs=serial)
        build_world(_tiny_config(13), workers=2, obs=parallel)
        assert parallel.counters == serial.counters
        assert parallel.calls("world.shard") == serial.calls("world.shard")
        assert len(parallel.histograms["world.shard"]) == len(serial.histograms["world.shard"])

    def test_attempted_and_produced_counters_recorded(self):
        obs = ObsRegistry()
        world = build_world(_tiny_config(13), obs=obs)
        assert obs.count("world_commits_attempted") == 450
        assert obs.count("world_commits_produced") == len(world.labels)

    def test_shard_spans_graft_under_active_span(self):
        obs = ObsRegistry()
        with obs.span("world.build"):
            build_world(WorldConfig(n_commits=40, n_repos=3, seed=1), obs=obs)
        spans = obs.spans
        build_span = next(s for s in spans if s.name == "world.build")
        shard_spans = [s for s in spans if s.name == "world.shard"]
        assert len(shard_spans) == 3
        assert all(s.parent_id == build_span.span_id for s in shard_spans)


class TestBuildStats:
    def test_totals_consistent(self):
        world = build_world(_tiny_config(2021))
        stats = world.build_stats
        assert stats["attempted"] == 450
        assert stats["produced"] == len(world.labels)
        assert (
            stats["produced"] + stats["skipped_no_c_paths"] + stats["skipped_exhausted"]
            == stats["attempted"]
        )
        assert stats["security"] + stats["nonsec"] == stats["produced"]

    def test_per_shard_breakdown_sums_to_totals(self):
        world = build_world(_tiny_config(2021))
        stats = world.build_stats
        assert set(stats["shards"]) == set(world.repos)
        for key in ("attempted", "produced", "skipped_no_c_paths", "skipped_exhausted"):
            assert sum(s[key] for s in stats["shards"].values()) == stats[key]

    def test_per_shard_produced_matches_labels(self):
        world = build_world(_tiny_config(2021))
        for slug, shard in world.build_stats["shards"].items():
            owned = [lab for lab in world.labels.values() if lab.repo_slug == slug]
            assert len(owned) == shard["produced"]

    def test_no_c_paths_counted_not_silent(self):
        # files_per_repo=0 leaves only non-C seed files: every step skips,
        # and the accounting says so instead of silently shrinking.
        obs = ObsRegistry()
        world = build_world(
            WorldConfig(n_commits=30, n_repos=2, files_per_repo=0, seed=3), obs=obs
        )
        assert len(world.labels) == 0
        assert world.build_stats["skipped_no_c_paths"] == 30
        assert obs.count("world_commits_skipped_no_c_paths") == 30
        assert obs.count("world_commits_produced") == 0


class TestMergeProtocol:
    def _shards(self, config):
        tasks = _shard_tasks(config)
        return tasks, [_build_shard(t) for t in tasks]

    def test_merge_rejects_label_count_mismatch(self):
        tasks, results = self._shards(WorldConfig(n_commits=40, n_repos=3, seed=1))
        results[1].labels.pop()
        with pytest.raises(CorpusError, match="parity violated"):
            _merge_shards(tasks, results, ObsRegistry())

    def test_merge_rejects_foreign_labels(self):
        tasks, results = self._shards(WorldConfig(n_commits=40, n_repos=3, seed=1))
        results[0].labels[0] = results[2].labels[0]
        with pytest.raises(CorpusError):
            _merge_shards(tasks, results, ObsRegistry())

    def test_merge_rejects_tampered_stats(self):
        tasks, results = self._shards(WorldConfig(n_commits=40, n_repos=3, seed=1))
        results[2].stats["produced"] += 1
        with pytest.raises(CorpusError, match="parity violated"):
            _merge_shards(tasks, results, ObsRegistry())

    @settings(max_examples=25, deadline=None)
    @given(order=st.permutations(list(range(4))))
    def test_merge_order_cannot_affect_digest(self, order):
        # Shards are built once per example set (cached on the class) and
        # merged in an arbitrary order; the world's ground-truth identity
        # must not change.
        cache = getattr(type(self), "_perm_cache", None)
        if cache is None:
            config = WorldConfig(n_commits=80, n_repos=4, seed=9)
            tasks = _shard_tasks(config)
            results = [_build_shard(t) for t in tasks]
            reference = _merge_shards(tasks, results, ObsRegistry()).digest()
            cache = (tasks, results, reference)
            type(self)._perm_cache = cache
        tasks, results, reference = cache
        permuted = _merge_shards(
            [tasks[i] for i in order], [results[i] for i in order], ObsRegistry()
        )
        assert permuted.digest() == reference


class TestPickleDropsPatchCache:
    def test_patch_cache_dropped_and_rewarmed(self, tiny_world):
        sha = tiny_world.all_shas()[0]
        warm = tiny_world.patch_for(sha)
        clone = pickle.loads(pickle.dumps(tiny_world))
        assert clone._patch_cache == {}
        assert clone.patch_for(sha).sha == warm.sha
        assert clone.patch_for(sha).files == warm.files

    def test_pickle_size_independent_of_warmed_cache(self):
        world = build_world(WorldConfig(n_commits=60, n_repos=3, seed=5))
        cold = len(pickle.dumps(world))
        for sha in world.all_shas():
            world.patch_for(sha)
        assert len(pickle.dumps(world)) == cold

    def test_build_stats_survive_pickle(self):
        world = build_world(WorldConfig(n_commits=60, n_repos=3, seed=5))
        clone = pickle.loads(pickle.dumps(world))
        assert clone.build_stats == world.build_stats


class TestCommitDates:
    def test_weekday_matches_calendar(self, tiny_world):
        weekdays = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")
        seen = set()
        for sha in tiny_world.all_shas():
            date = tiny_world.repo_of(sha).commit_object(sha).date
            day_name, month_day, _, year, _ = date.split()
            month, day = (int(part) for part in month_day.split("/"))
            real = weekdays[datetime.date(int(year), month, day).weekday()]
            assert day_name == real, f"{sha[:12]}: {date}"
            seen.add(day_name)
        # A year of commits is not all Thursdays any more.
        assert len(seen) > 1
