"""Tests for the procedural C code generator."""

import numpy as np
import pytest

from repro.corpus import CodeGenerator
from repro.lang import count_fragment, parse_translation_unit


class TestFunctions:
    def test_function_parses(self):
        gen = CodeGenerator(0)
        for _ in range(10):
            fn = gen.gen_function()
            unit = parse_translation_unit(fn.render())
            assert len(unit.functions) == 1
            assert unit.functions[0].name == fn.name

    def test_unique_names(self):
        gen = CodeGenerator(1)
        names = {gen.gen_function().name for _ in range(30)}
        assert len(names) == 30

    def test_non_void_returns(self):
        gen = CodeGenerator(2)
        for _ in range(10):
            fn = gen.gen_function()
            if fn.return_type != "void":
                assert any("return" in l for l in fn.body_lines)

    def test_bodies_have_declarations(self):
        fn = CodeGenerator(3).gen_function()
        assert any(l.strip().startswith("int i, j;") for l in fn.body_lines)


class TestFiles:
    def test_file_parses(self):
        gen = CodeGenerator(4)
        for _ in range(5):
            gfile = gen.gen_file()
            unit = parse_translation_unit(gfile.render())
            assert len(unit.functions) == len(gfile.functions)

    def test_file_has_includes(self):
        text = CodeGenerator(5).gen_file().render()
        assert "#include <stdio.h>" in text

    def test_requested_function_count(self):
        gfile = CodeGenerator(6).gen_file(n_functions=7)
        assert len(gfile.functions) == 7

    def test_paths_have_c_extension(self):
        assert CodeGenerator(7).gen_file().path.endswith(".c")


class TestRealism:
    def test_files_exercise_feature_space(self):
        """Generated code must populate the Table I feature dimensions."""
        texts = [CodeGenerator(seed).gen_file(n_functions=5).render() for seed in range(8)]
        counts = count_fragment("\n".join(texts))
        assert counts.if_statements >= 3
        assert counts.loops >= 3
        assert counts.function_calls >= 5
        assert counts.memory_operators >= 1
        assert counts.relational_operators >= 3
        assert counts.variable_count >= 10


class TestDeterminism:
    def test_same_seed_same_output(self):
        a = CodeGenerator(42).gen_file().render()
        b = CodeGenerator(42).gen_file().render()
        assert a == b

    def test_different_seed_different_output(self):
        a = CodeGenerator(1).gen_file().render()
        b = CodeGenerator(2).gen_file().render()
        assert a != b

    def test_generator_object_accepted(self):
        rng = np.random.default_rng(0)
        CodeGenerator(rng).gen_function()
