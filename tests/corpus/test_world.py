"""Tests for the world builder and its ground truth."""

import numpy as np
import pytest

from repro.corpus import (
    NVD_TYPE_DISTRIBUTION,
    WILD_TYPE_DISTRIBUTION,
    CommitLabel,
    WorldConfig,
    build_world,
)
from repro.errors import CorpusError


class TestConfigValidation:
    def test_defaults_valid(self):
        WorldConfig().validate()

    def test_bad_fraction(self):
        with pytest.raises(CorpusError):
            WorldConfig(security_fraction=1.5).validate()

    def test_bad_distribution_sum(self):
        cfg = WorldConfig()
        cfg.nvd_type_distribution = {1: 0.5}
        with pytest.raises(CorpusError):
            cfg.validate()

    def test_unknown_type_id(self):
        cfg = WorldConfig()
        cfg.wild_type_distribution = {99: 1.0}
        with pytest.raises(CorpusError):
            cfg.validate()

    def test_default_distributions_sum_to_one(self):
        assert sum(NVD_TYPE_DISTRIBUTION.values()) == pytest.approx(1.0)
        assert sum(WILD_TYPE_DISTRIBUTION.values()) == pytest.approx(1.0)


class TestWorldStructure:
    def test_repo_count(self, tiny_world):
        assert len(tiny_world.repos) == 6

    def test_labels_reference_real_commits(self, tiny_world):
        for sha, label in tiny_world.labels.items():
            assert sha in tiny_world.repos[label.repo_slug]

    def test_initial_commits_unlabeled(self, tiny_world):
        for slug, repo in tiny_world.repos.items():
            first = repo.shas()[0]
            assert first not in tiny_world.labels

    def test_every_label_has_consistent_fields(self, tiny_world):
        for label in tiny_world.labels.values():
            if label.is_security:
                assert label.pattern_type in range(1, 13)
                assert label.nonsec_kind is None
            else:
                assert label.pattern_type is None
                assert label.nonsec_kind is not None
                assert label.cve_id is None

    def test_nvd_subset_of_security(self, tiny_world):
        assert set(tiny_world.nvd_shas()) <= set(tiny_world.security_shas())

    def test_wild_and_nvd_partition(self, tiny_world):
        all_shas = set(tiny_world.all_shas())
        assert set(tiny_world.nvd_shas()) | set(tiny_world.wild_shas()) == all_shas
        assert not set(tiny_world.nvd_shas()) & set(tiny_world.wild_shas())


class TestWorldStatistics:
    def test_security_fraction_in_range(self, tiny_world):
        frac = len(tiny_world.security_shas()) / len(tiny_world.all_shas())
        assert 0.04 <= frac <= 0.20  # configured 0.10, wide tolerance

    def test_cve_ids_well_formed(self, tiny_world):
        for sha in tiny_world.nvd_shas():
            cve = tiny_world.label(sha).cve_id
            assert cve.startswith("CVE-")
            year = int(cve.split("-")[1])
            assert 2014 <= year <= 2021


class TestPatchExport:
    def test_patches_never_empty(self, tiny_world):
        for sha in tiny_world.all_shas()[:60]:
            assert not tiny_world.patch_for(sha).is_empty

    def test_patches_are_c_filtered(self, tiny_world):
        for sha in tiny_world.all_shas()[:60]:
            for path in tiny_world.patch_for(sha).touched_paths():
                assert path.endswith((".c", ".h"))

    def test_some_raw_commits_touch_non_c_files(self, tiny_world):
        """The world must exercise the §III-A non-C/C++ filter."""
        found = False
        for sha in tiny_world.all_shas():
            raw = tiny_world.repo_of(sha).patch_for(sha)
            if any(not f.is_c_cpp for f in raw.files):
                found = True
                break
        assert found

    def test_patch_cache_returns_same_object(self, tiny_world):
        sha = tiny_world.all_shas()[0]
        assert tiny_world.patch_for(sha) is tiny_world.patch_for(sha)

    def test_nvd_patches_are_bigger_on_average(self, tiny_world):
        """CVE-worthy fixes are multi-site; silent wild fixes are small."""
        nvd = set(tiny_world.nvd_shas())
        wild_sec = [s for s in tiny_world.security_shas() if s not in nvd]
        if not nvd or not wild_sec:
            pytest.skip("tiny world produced too few patches")
        nvd_sizes = [len(tiny_world.patch_for(s).added_lines()) for s in nvd]
        wild_sizes = [len(tiny_world.patch_for(s).added_lines()) for s in wild_sec]
        assert np.mean(nvd_sizes) > np.mean(wild_sizes)


class TestDeterminism:
    def test_same_seed_same_world(self):
        cfg = WorldConfig(n_commits=60, n_repos=3, seed=5)
        a = build_world(cfg)
        b = build_world(WorldConfig(n_commits=60, n_repos=3, seed=5))
        assert list(a.labels) == list(b.labels)
        assert [l.pattern_type for l in a.labels.values()] == [
            l.pattern_type for l in b.labels.values()
        ]

    def test_different_seed_different_world(self):
        a = build_world(WorldConfig(n_commits=60, n_repos=3, seed=5))
        b = build_world(WorldConfig(n_commits=60, n_repos=3, seed=6))
        assert list(a.labels) != list(b.labels)

    def test_zero_commits(self):
        world = build_world(WorldConfig(n_commits=0, n_repos=2, seed=1))
        assert world.all_shas() == []
