"""Tests for the security and non-security patch generators."""

import numpy as np
import pytest

from repro.corpus import (
    NONSEC_GENERATORS,
    PATTERN_NAMES,
    SECURITY_GENERATORS,
    CodeGenerator,
    apply_nonsec_pattern,
    apply_security_pattern,
)
from repro.diffing import diff_texts
from repro.lang import parse_translation_unit


@pytest.fixture(scope="module")
def source():
    """A generated file rich enough for every pattern to find an anchor."""
    gen = CodeGenerator(11)
    return gen.gen_file(n_functions=6).render()


def _apply_with_retries(func, text, tries=25):
    for seed in range(tries):
        out = func(text, np.random.default_rng(seed))
        if out is not None and out != text:
            return out
    return None


class TestSecurityGenerators:
    def test_twelve_patterns_defined(self):
        assert sorted(SECURITY_GENERATORS) == list(range(1, 13))
        assert sorted(PATTERN_NAMES) == list(range(1, 13))

    @pytest.mark.parametrize("ptype", sorted(SECURITY_GENERATORS))
    def test_pattern_produces_valid_change(self, source, ptype):
        out = _apply_with_retries(lambda t, r: apply_security_pattern(t, ptype, r), source)
        assert out is not None, f"pattern {ptype} never applied"
        # The mutated file must still parse and must differ.
        parse_translation_unit(out)
        d = diff_texts(source, out, "f.c")
        assert d.hunks

    def test_bound_check_adds_if(self, source):
        out = _apply_with_retries(lambda t, r: apply_security_pattern(t, 1, r), source)
        added = [l for h in diff_texts(source, out, "f.c").hunks for l in h.added]
        assert any("if (" in l for l in added)
        assert any("return" in l for l in added)

    def test_null_check_mentions_null_or_negation(self, source):
        out = _apply_with_retries(lambda t, r: apply_security_pattern(t, 2, r), source)
        added = " ".join(l for h in diff_texts(source, out, "f.c").hunks for l in h.added)
        assert "NULL" in added or "!" in added

    def test_move_preserves_line_multiset(self, source):
        out = _apply_with_retries(lambda t, r: apply_security_pattern(t, 10, r), source)
        d = diff_texts(source, out, "f.c")
        removed = sorted(l.strip() for h in d.hunks for l in h.removed)
        added = sorted(l.strip() for h in d.hunks for l in h.added)
        assert removed == added

    def test_redesign_is_large(self, source):
        out = _apply_with_retries(lambda t, r: apply_security_pattern(t, 11, r), source)
        d = diff_texts(source, out, "f.c")
        total = sum(len(h.added) + len(h.removed) for h in d.hunks)
        assert total >= 6

    def test_jump_adds_goto(self, source):
        out = _apply_with_retries(lambda t, r: apply_security_pattern(t, 9, r), source)
        added = " ".join(l for h in diff_texts(source, out, "f.c").hunks for l in h.added)
        assert "goto" in added

    def test_inapplicable_returns_none(self):
        # A file with no functions offers no anchors.
        assert apply_security_pattern("int x;\n", 1, np.random.default_rng(0)) is None


class TestNonsecGenerators:
    @pytest.mark.parametrize("kind", sorted(NONSEC_GENERATORS))
    def test_kind_produces_valid_change(self, source, kind):
        out = _apply_with_retries(lambda t, r: apply_nonsec_pattern(t, kind, r), source)
        assert out is not None, f"kind {kind} never applied"
        parse_translation_unit(out)
        assert diff_texts(source, out, "f.c").hunks

    def test_feature_adds_function(self, source):
        out = _apply_with_retries(lambda t, r: apply_nonsec_pattern(t, "feature", r), source)
        before = len(parse_translation_unit(source).functions)
        after = len(parse_translation_unit(out).functions)
        assert after == before + 1

    def test_refactor_renames_consistently(self, source):
        out = _apply_with_retries(lambda t, r: apply_nonsec_pattern(t, "refactor", r), source)
        d = diff_texts(source, out, "f.c")
        # Rename only: equal number of added and removed lines.
        assert sum(len(h.added) for h in d.hunks) == sum(len(h.removed) for h in d.hunks)

    def test_cleanup_removes_a_line(self, source):
        out = _apply_with_retries(lambda t, r: apply_nonsec_pattern(t, "cleanup", r), source)
        assert len(out.splitlines()) == len(source.splitlines()) - 1

    def test_logging_adds_print(self, source):
        out = _apply_with_retries(lambda t, r: apply_nonsec_pattern(t, "logging", r), source)
        added = " ".join(l for h in diff_texts(source, out, "f.c").hunks for l in h.added)
        assert any(call in added for call in ("printf", "pr_debug", "log_info", "fprintf"))

    def test_defensive_looks_like_security(self, source):
        """The defensive generator must produce security-lookalike guards."""
        out = _apply_with_retries(lambda t, r: apply_nonsec_pattern(t, "defensive", r), source)
        added = [l for h in diff_texts(source, out, "f.c").hunks for l in h.added]
        assert any("if (" in l for l in added)
        assert any("return" in l for l in added)
