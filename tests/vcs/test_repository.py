"""Tests for the version-control substrate."""

import pytest

from repro.errors import ObjectNotFoundError, VcsError
from repro.patch import parse_patch
from repro.vcs import Blob, Repository, Snapshot, sha1_hex


@pytest.fixture()
def repo():
    r = Repository("owner/project")
    r.commit({"src/a.c": "int x;\n", "README.md": "hi\n"}, "initial import")
    r.commit({"src/a.c": "int x;\nint y;\n", "README.md": "hi\n"}, "add y")
    return r


class TestObjects:
    def test_blob_oid_is_content_addressed(self):
        assert Blob("abc").oid == Blob("abc").oid
        assert Blob("abc").oid != Blob("abd").oid
        assert len(Blob("abc").oid) == 40

    def test_snapshot_order_independent(self):
        a = Snapshot.from_mapping({"x": "1", "y": "2"})
        b = Snapshot.from_mapping({"y": "2", "x": "1"})
        assert a.oid == b.oid

    def test_sha1_hex_kind_matters(self):
        assert sha1_hex("blob", b"x") != sha1_hex("tree", b"x")


class TestCommits:
    def test_shas_unique_and_ordered(self, repo):
        shas = repo.shas()
        assert len(shas) == 2
        assert len(set(shas)) == 2
        assert repo.head == shas[-1]

    def test_log_newest_first(self, repo):
        log = repo.log()
        assert log[0].subject == "add y"
        assert log[1].subject == "initial import"

    def test_slug_validation(self):
        with pytest.raises(VcsError):
            Repository("noslash")

    def test_contains(self, repo):
        assert repo.head in repo
        assert "f" * 40 not in repo

    def test_unknown_sha_raises(self, repo):
        with pytest.raises(ObjectNotFoundError):
            repo.commit_object("f" * 40)


class TestCheckout:
    def test_checkout_head(self, repo):
        tree = repo.checkout(repo.head)
        assert tree["src/a.c"] == "int x;\nint y;\n"

    def test_checkout_earlier(self, repo):
        first = repo.shas()[0]
        assert repo.checkout(first)["src/a.c"] == "int x;\n"

    def test_file_at(self, repo):
        assert repo.file_at(repo.head, "src/a.c") == "int x;\nint y;\n"
        assert repo.file_at(repo.head, "missing.c") is None

    def test_before_after(self, repo):
        before, after = repo.before_after(repo.head)
        assert before["src/a.c"] == "int x;\n"
        assert after["src/a.c"] == "int x;\nint y;\n"

    def test_before_of_initial_is_empty(self, repo):
        first = repo.shas()[0]
        before, after = repo.before_after(first)
        assert before == {}
        assert "src/a.c" in after


class TestDiffAndPatch:
    def test_diff_lists_changed_files_only(self, repo):
        diffs = repo.diff(repo.head)
        assert [d.path for d in diffs] == ["src/a.c"]

    def test_diff_content(self, repo):
        hunk = repo.diff(repo.head)[0].hunks[0]
        assert hunk.added == ("int y;",)

    def test_patch_for(self, repo):
        p = repo.patch_for(repo.head)
        assert p.sha == repo.head
        assert p.repo == "owner/project"
        assert p.subject == "add y"

    def test_patch_text_parses_back(self, repo):
        text = repo.patch_text(repo.head)
        parsed = parse_patch(text, repo="owner/project")
        assert parsed.sha == repo.head
        assert parsed.files == repo.patch_for(repo.head).files

    def test_initial_commit_diff_is_new_files(self, repo):
        first = repo.shas()[0]
        diffs = repo.diff(first)
        assert all(d.is_new_file for d in diffs)

    def test_commit_url(self, repo):
        url = repo.commit_url(repo.head)
        assert url == f"https://github.com/owner/project/commit/{repo.head}"

    def test_file_deletion_diff(self):
        r = Repository("o/p")
        r.commit({"a.c": "x\n", "b.c": "y\n"}, "two files")
        r.commit({"a.c": "x\n"}, "remove b")
        diffs = r.diff(r.head)
        assert len(diffs) == 1
        assert diffs[0].is_deleted_file


class TestStats:
    def test_stats_at_head(self, repo):
        files, functions = repo.stats_at_head()
        assert files == 2
        assert functions >= 0

    def test_empty_repo_stats(self):
        assert Repository("a/b").stats_at_head() == (0, 0)
