"""Tests for the closed find→patch→verify loop on hand-built sources."""

import json

import pytest

from repro.autofix import (
    DEFAULT_KINDS,
    AutofixConfig,
    AutofixOracle,
    AutofixReport,
    FlawPlant,
    run_autofix,
)
from repro.errors import AutofixError
from repro.obs import ObsRegistry

HOST = """\
int clamp(int v, int lo, int hi) {
    int out = v;
    if (v < lo) {
        out = lo;
    }
    if (v > hi) {
        out = hi;
    }
    return out;
}
"""


def _items(n: int) -> list[tuple[str, str]]:
    # Distinct paths so plant suffixes/oracle streams differ per file.
    return [(f"repo/src/file_{i:02d}.c", HOST) for i in range(n)]


class TestEndToEnd:
    @pytest.mark.parametrize("kind", DEFAULT_KINDS)
    def test_every_kind_round_trips_on_the_host(self, kind):
        report = run_autofix(_items(1), AutofixConfig(kinds=(kind,)))
        (outcome,) = report.outcomes
        assert outcome.planted, kind
        assert outcome.found, kind
        assert outcome.accepted, kind
        assert all(outcome.gates.values())
        assert outcome.diff and not outcome.crashed
        assert outcome.false_positives == ()

    def test_kinds_cycle_over_sorted_paths(self):
        kinds = ("dangerous-api", "variant:1")
        report = run_autofix(_items(4), AutofixConfig(kinds=kinds))
        assert [o.plant.kind for o in report.outcomes] == [
            "dangerous-api", "variant:1", "dangerous-api", "variant:1",
        ]

    def test_unplantable_file_contributes_nothing(self):
        report = run_autofix(
            [("repo/empty.c", "int x = 3;\n")], AutofixConfig(kinds=("dangerous-api",))
        )
        (outcome,) = report.outcomes
        assert not outcome.planted
        assert report.plants_applied == 0
        assert report.repair_rate == 0.0

    def test_counters(self):
        obs = ObsRegistry()
        report = run_autofix(_items(3), AutofixConfig(kinds=("missing-check",)), obs=obs)
        assert obs.count("autofix_plants") == report.plants_applied == 3
        assert obs.count("autofix_found") == report.found == 3
        assert obs.count("autofix_accepted") == report.accepted == 3
        assert obs.count("autofix_crashes") == 0


class TestParallelParity:
    def test_manifest_and_counters_bit_identical(self):
        obs_serial, obs_pool = ObsRegistry(), ObsRegistry()
        serial = run_autofix(_items(8), workers=1, obs=obs_serial)
        pooled = run_autofix(_items(8), workers=2, obs=obs_pool)
        assert serial.to_json() == pooled.to_json()
        names = ("autofix_plants", "autofix_found", "autofix_accepted", "autofix_crashes")
        assert [obs_serial.count(n) for n in names] == [obs_pool.count(n) for n in names]

    def test_unsorted_input_is_normalized(self):
        items = _items(4)
        forward = run_autofix(items)
        backward = run_autofix(list(reversed(items)))
        assert forward.to_json() == backward.to_json()


class TestConfig:
    def test_unknown_kind_rejected(self):
        with pytest.raises(AutofixError, match="unknown plant kind"):
            run_autofix(_items(1), AutofixConfig(kinds=("no-such-checker",)))

    def test_out_of_range_variant_rejected(self):
        with pytest.raises(AutofixError, match="unknown plant kind"):
            AutofixConfig(kinds=("variant:9",)).validate()

    def test_even_panel_rejected(self):
        with pytest.raises(AutofixError, match="odd"):
            AutofixConfig(n_annotators=2).validate()

    def test_empty_kinds_rejected(self):
        with pytest.raises(AutofixError, match="at least one"):
            AutofixConfig(kinds=()).validate()


class TestOracle:
    def _plant(self, path="a.c"):
        return FlawPlant(
            path=path, kind="dangerous-api", checker="dangerous-api",
            insert_line=1, n_lines=1, span_start=2, span_end=2, marker="seed_dst",
        )

    def test_exact_panel_reads_the_marker(self):
        oracle = AutofixOracle()
        assert oracle.is_vulnerable("x = seed_dst;", self._plant())
        assert not oracle.is_vulnerable("x = 0;", self._plant())

    def test_noisy_panel_is_order_independent(self):
        oracle = AutofixOracle(n_annotators=5, annotator_error_rate=0.4, seed=7)
        plants = [self._plant(f"p{i}.c") for i in range(20)]
        forward = [oracle.is_vulnerable("seed_dst", p) for p in plants]
        backward = [oracle.is_vulnerable("seed_dst", p) for p in reversed(plants)]
        assert forward == backward[::-1]


class TestManifest:
    def test_json_round_trip(self):
        report = run_autofix(_items(2))
        again = AutofixReport.from_json(report.to_json())
        assert again.to_json() == report.to_json()

    def test_timings_stay_out_of_the_manifest(self):
        report = run_autofix(_items(1))
        assert "elapsed_ms" not in json.loads(report.to_json())["outcomes"][0]
        assert "elapsed_ms" in report.outcomes[0].to_dict(include_timings=True)
        assert report.outcomes[0].elapsed_ms > 0.0

    def test_bad_payload_rejected(self):
        with pytest.raises(AutofixError, match="manifest"):
            AutofixReport.from_json("{}")
        with pytest.raises(AutofixError, match="JSON"):
            AutofixReport.from_json("not json")

    def test_render_text_has_the_headline(self):
        report = run_autofix(_items(2))
        text = report.render_text()
        assert "verified repairs" in text and "P=" in text

    def test_finder_scores_shape(self):
        report = run_autofix(_items(2), AutofixConfig(kinds=("alloc-free",)))
        scores = report.finder_scores()
        assert scores["alloc-free"]["tp"] == 2
        assert scores["alloc-free"]["precision"] == 1.0
