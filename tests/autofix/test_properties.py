"""Property-based invariants of the verifier.

Two promises an accepted repair makes, checked over generated hosts:
it never introduces a checker finding the pre-plant original did not
have, and it never changes the CFG signature of any function other than
the one hosting the plant.  Both are enforced by verifier gates; these
tests re-derive them from the accepted candidate text itself, so a gate
that rots (or a candidate generator that sidesteps one) fails here.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.autofix import DEFAULT_KINDS, AutofixConfig, AutofixOracle
from repro.autofix.pipeline import _candidates, _plant, _verify
from repro.staticcheck import analyze_source, cfg_signature, make_checkers
from repro.staticcheck.model import LintReport, shifted_finding_ids

CONDS = ("v < lo", "v > hi", "v == lo", "v != hi", "v + lo > hi")
BYSTANDER = """\
int bystander_%d(int k) {
    int acc = k;
    if (k > %d) {
        acc = acc - 1;
    }
    return acc;
}
"""


def _host(cond: str, n_bystanders: int, body_stmts: int) -> str:
    body = "".join(f"    out = out + {i};\n" for i in range(body_stmts))
    host = (
        "int host(int v, int lo, int hi) {\n"
        "    int out = v;\n"
        f"    if ({cond}) {{\n"
        "        out = lo;\n"
        "    }\n" + body + "    return out;\n"
        "}\n"
    )
    return host + "".join(BYSTANDER % (i, i) for i in range(n_bystanders))


@st.composite
def plant_cases(draw):
    cond = draw(st.sampled_from(CONDS))
    n_bystanders = draw(st.integers(min_value=1, max_value=3))
    body_stmts = draw(st.integers(min_value=0, max_value=3))
    kind = draw(st.sampled_from(DEFAULT_KINDS))
    return _host(cond, n_bystanders, body_stmts), kind


def _accepted_candidate(source: str, kind: str) -> tuple[str, str] | None:
    """Drive plant→find→patch→verify by hand; return (candidate, checker
    baseline source) for the first accepted candidate, None otherwise."""
    path = "prop/case.c"
    pair = _plant(path, source, kind)
    if pair is None:
        return None
    planted, plant = pair
    checkers = make_checkers()
    baseline = LintReport(files=[analyze_source(path, source, checkers)])
    shifted = shifted_finding_ids(baseline, plant.insert_line, plant.n_lines)
    hits = [
        f
        for f in analyze_source(path, planted, checkers).findings
        if f.stable_id not in shifted
        and f.checker == plant.checker
        and plant.span_start <= f.line <= plant.span_end
    ]
    if not hits:
        return None
    original_sig = cfg_signature(source, path)
    oracle = AutofixOracle()
    from repro.autofix.pipeline import _dead_store_keys

    original_dead = _dead_store_keys(source, path)
    for candidate in _candidates(planted, plant, hits[0].line):
        gates = _verify(
            candidate, plant, checkers, original_sig,
            baseline.finding_ids(), original_dead, oracle,
        )
        if all(gates.values()):
            return candidate, path
    return None


class TestAcceptedRepairInvariants:
    @given(case=plant_cases())
    @settings(max_examples=40, deadline=None)
    def test_no_new_findings_ever(self, case):
        source, kind = case
        result = _accepted_candidate(source, kind)
        assume(result is not None)
        candidate, path = result
        checkers = make_checkers()
        baseline_ids = {
            f.stable_id for f in analyze_source(path, source, checkers).findings
        }
        candidate_ids = {
            f.stable_id for f in analyze_source(path, candidate, checkers).findings
        }
        assert candidate_ids <= baseline_ids

    @given(case=plant_cases())
    @settings(max_examples=40, deadline=None)
    def test_untouched_functions_keep_their_cfg(self, case):
        source, kind = case
        result = _accepted_candidate(source, kind)
        assume(result is not None)
        candidate, path = result
        before = dict(cfg_signature(source, path))
        after = dict(cfg_signature(candidate, path))
        assert set(after) == set(before)
        for name, sig in after.items():
            if name != "host":
                assert sig == before[name], name

    @given(case=plant_cases())
    @settings(max_examples=25, deadline=None)
    def test_pipeline_always_terminates_cleanly(self, case):
        # The whole loop (via the public entry point) on a generated host:
        # no crash, and any acceptance implies every gate held.
        from repro.autofix import run_autofix

        source, kind = case
        report = run_autofix([("prop/case.c", source)], AutofixConfig(kinds=(kind,)))
        (outcome,) = report.outcomes
        assert not outcome.crashed
        if outcome.accepted:
            assert all(outcome.gates.values())
