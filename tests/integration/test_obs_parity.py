"""Serial vs parallel observability parity.

The merge protocol's acceptance bar: running the same work serially and
through the chunked process pools must report *bit-identical* merged
counters and per-item timer call counts.  Parallel runs used to bulk-count
on the parent side (and silently drop worker-side timings); these tests
pin the fixed behavior for the feature cache, the token cache, and the
linter.

Timer *seconds* differ between modes by construction (different clocks in
different processes), so parity is asserted on counters, call counts, and
histogram lengths — the deterministic parts.
"""

from __future__ import annotations

import pytest

from repro.core.cache import PatchFeatureCache, TokenSequenceCache
from repro.obs import ObsRegistry
from repro.staticcheck import lint_world

pytestmark = pytest.mark.slow


def shas_with_dupes(world, n: int) -> list[str]:
    """A workload with repeats, so cache-hit counting is exercised too."""
    shas = sorted(world.labels)[:n]
    return shas + shas[: n // 3]


class TestFeatureCacheParity:
    def test_counters_match_serial(self, tiny_world):
        shas = shas_with_dupes(tiny_world, 60)
        serial = ObsRegistry()
        PatchFeatureCache(tiny_world, obs=serial).matrix(shas)
        parallel = ObsRegistry()
        PatchFeatureCache(tiny_world, obs=parallel).matrix(shas, workers=2)
        assert parallel.counters == serial.counters
        assert parallel.calls("extract") == serial.calls("extract")
        assert len(parallel.histograms["extract"]) == len(serial.histograms["extract"])

    def test_repeat_matrix_counts_hits_identically(self, tiny_world):
        shas = sorted(tiny_world.labels)[:40]
        serial = ObsRegistry()
        cache_s = PatchFeatureCache(tiny_world, obs=serial)
        cache_s.matrix(shas)
        cache_s.matrix(shas)
        parallel = ObsRegistry()
        cache_p = PatchFeatureCache(tiny_world, obs=parallel)
        cache_p.matrix(shas, workers=2)
        cache_p.matrix(shas, workers=2)
        assert parallel.counters == serial.counters
        assert serial.count("vector_cache_hits") == len(shas)


class TestTokenCacheParity:
    def test_counters_match_serial(self, tiny_world):
        shas = shas_with_dupes(tiny_world, 60)
        serial = ObsRegistry()
        TokenSequenceCache(tiny_world, obs=serial).sequences(shas)
        parallel = ObsRegistry()
        TokenSequenceCache(tiny_world, obs=parallel).sequences(shas, workers=2)
        assert parallel.counters == serial.counters
        assert parallel.calls("tokenize") == serial.calls("tokenize")
        assert len(parallel.histograms["tokenize"]) == len(serial.histograms["tokenize"])


class TestLintParity:
    def test_counters_match_serial(self, tiny_world):
        serial = ObsRegistry()
        report_s = lint_world(tiny_world, obs=serial)
        parallel = ObsRegistry()
        report_p = lint_world(tiny_world, workers=2, obs=parallel)
        assert [f.path for f in report_p.files] == [f.path for f in report_s.files]
        assert parallel.counters == serial.counters
        assert parallel.calls("lint") == serial.calls("lint")
        assert len(parallel.histograms["lint"]) == len(serial.histograms["lint"])
        assert serial.count("files_linted") == len(report_s.files)
