"""End-to-end integration tests of the full PatchDB construction pipeline."""

import pytest

from repro.analysis import build_patchdb
from repro.analysis.experiments import TINY, ExperimentWorld
from repro.core import PatchDB, PatchQuery
from repro.nvd import NvdCrawler, build_nvd


@pytest.fixture(scope="module")
def pipeline_world():
    """A TINY world whose NVD seed set is large enough for augmentation to
    find wild patches (the shared fixture's seed draws only 6 seed patches,
    too few for nearest link to land any hits at this scale)."""
    return ExperimentWorld(TINY, seed=3)


@pytest.fixture(scope="module")
def patchdb(pipeline_world):
    return build_patchdb(pipeline_world, synthesize=True)


class TestFullPipeline:
    def test_all_three_components_present(self, patchdb):
        summary = patchdb.summary()
        assert summary["nvd_security"] > 0
        assert summary["wild_security"] > 0
        assert summary["synthetic_security"] > 0

    def test_wild_records_verified(self, patchdb, pipeline_world):
        for rec in patchdb.records(PatchQuery(source="wild", is_security=True)):
            assert pipeline_world.world.label(rec.patch.sha).is_security

    def test_nonsecurity_dataset_collected(self, patchdb):
        assert len(patchdb.records(PatchQuery(source="wild", is_security=False))) > 0

    def test_nvd_records_carry_cves(self, patchdb):
        nvd_records = patchdb.records(PatchQuery(source="nvd"))
        with_cve = [r for r in nvd_records if r.cve_id]
        assert len(with_cve) >= 0.9 * len(nvd_records)

    def test_security_patches_categorized(self, patchdb):
        for rec in patchdb.records(PatchQuery(is_security=True)):
            if rec.source != "synthetic":
                assert rec.pattern_type in range(1, 13)

    def test_synthetic_patches_reference_scaffolding(self, patchdb):
        for rec in patchdb.records(PatchQuery(source="synthetic"))[:20]:
            changed = " ".join(rec.patch.added_lines() + rec.patch.removed_lines())
            assert "_SYS_" in changed

    def test_persistence_round_trip(self, patchdb, tmp_path):
        path = tmp_path / "patchdb.jsonl"
        patchdb.save_jsonl(path)
        loaded = PatchDB.load_jsonl(path)
        assert loaded.summary() == patchdb.summary()

    def test_silent_patches_present(self, patchdb, pipeline_world):
        """The paper's headline: wild security patches are not in any CVE."""
        world = pipeline_world.world
        wild_sec = patchdb.records(PatchQuery(source="wild", is_security=True))
        assert all(world.label(r.patch.sha).cve_id is None for r in wild_sec)


class TestCrawlerToAugmentationConsistency:
    def test_crawler_output_feeds_augmentation(self, experiment_world):
        nvd = build_nvd(experiment_world.world)
        crawl = NvdCrawler(experiment_world.world).crawl(nvd)
        # Every crawled sha is usable by the feature cache.
        for patch in crawl.security_patches[:10]:
            vec = experiment_world.cache.vector(patch.sha)
            assert vec.shape == (60,)

    def test_feature_cache_reused_across_experiments(self, experiment_world):
        before = len(experiment_world.cache)
        experiment_world.cache.matrix(experiment_world.nvd_seed_shas)
        after = len(experiment_world.cache)
        experiment_world.cache.matrix(experiment_world.nvd_seed_shas)
        assert len(experiment_world.cache) == after
        assert after >= before
