"""Smoke tests: every example script must run cleanly end to end."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = REPO_ROOT / "examples"


def run_example(name: str, args: list[str], tmp_path) -> str:
    # The examples import repro from a bare checkout; the subprocess doesn't
    # inherit pytest's import path, so put src/ on PYTHONPATH explicitly.
    src = str(REPO_ROOT / "src")
    existing = os.environ.get("PYTHONPATH")
    env = {
        **os.environ,
        "PYTHONPATH": f"{src}{os.pathsep}{existing}" if existing else src,
    }
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=420,
        cwd=tmp_path,
        env=env,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stdout}\n{proc.stderr}"
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, tmp_path):
        out = run_example("quickstart.py", [str(tmp_path / "db.jsonl")], tmp_path)
        assert "PatchDB summary" in out
        assert "reload check: OK" in out
        assert (tmp_path / "db.jsonl").exists()

    def test_augment_from_the_wild(self, tmp_path):
        out = run_example("augment_from_the_wild.py", ["2", "200"], tmp_path)
        assert "closest links" in out
        assert "expert effort" in out
        assert "effort reduced" in out

    def test_synthesize_patches(self, tmp_path):
        out = run_example("synthesize_patches.py", ["2"], tmp_path)
        assert "synthetic via variant" in out
        assert "_SYS_" in out

    def test_classify_patches(self, tmp_path):
        out = run_example("classify_patches.py", [], tmp_path)
        assert "Table VI analogue" in out
        assert "P(security)" in out
        assert "pattern type" in out
