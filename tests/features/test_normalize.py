"""Tests for max-abs weighting and the weighted distance matrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import FeatureError
from repro.features import MaxAbsWeighter, weighted_distance_matrix


class TestMaxAbsWeighter:
    def test_weights_formula(self):
        m = np.array([[2.0, -4.0], [1.0, 2.0]])
        w = MaxAbsWeighter().fit(m)
        assert np.allclose(w.weights, [0.5, 0.25])

    def test_transform_in_range(self):
        m = np.array([[10.0, -3.0], [-20.0, 1.0], [5.0, 0.0]])
        out = MaxAbsWeighter().fit_transform(m)
        assert np.all(np.abs(out) <= 1.0 + 1e-12)

    def test_sign_preserved(self):
        m = np.array([[5.0, -2.0], [-5.0, 2.0]])
        out = MaxAbsWeighter().fit_transform(m)
        assert np.all(np.sign(out) == np.sign(m))

    def test_constant_zero_column_weight_zero(self):
        m = np.array([[0.0, 1.0], [0.0, 2.0]])
        w = MaxAbsWeighter().fit(m)
        assert w.weights[0] == 0.0

    def test_fit_over_union(self):
        a = np.array([[1.0]])
        b = np.array([[4.0]])
        w = MaxAbsWeighter().fit(a, b)
        assert w.weights[0] == 0.25

    def test_unfitted_raises(self):
        with pytest.raises(FeatureError):
            MaxAbsWeighter().transform(np.ones((2, 2)))

    def test_empty_fit_raises(self):
        with pytest.raises(FeatureError):
            MaxAbsWeighter().fit(np.zeros((0, 3)))

    def test_shape_mismatch_raises(self):
        w = MaxAbsWeighter().fit(np.ones((2, 3)))
        with pytest.raises(FeatureError):
            w.transform(np.ones((2, 4)))


class TestWeightedDistanceMatrix:
    def test_matches_naive_computation(self):
        rng = np.random.default_rng(0)
        sec = rng.uniform(-5, 5, size=(4, 6))
        wild = rng.uniform(-5, 5, size=(7, 6))
        d = weighted_distance_matrix(sec, wild)
        w = MaxAbsWeighter().fit(sec, wild)
        s, x = w.transform(sec), w.transform(wild)
        naive = np.array([[np.linalg.norm(s[i] - x[j]) for j in range(7)] for i in range(4)])
        assert np.allclose(d, naive, atol=1e-9)

    def test_shape(self):
        d = weighted_distance_matrix(np.ones((3, 5)), np.ones((8, 5)))
        assert d.shape == (3, 8)

    def test_identical_rows_zero_distance(self):
        sec = np.array([[1.0, 2.0, 3.0]])
        wild = np.array([[1.0, 2.0, 3.0], [9.0, 9.0, 9.0]])
        d = weighted_distance_matrix(sec, wild)
        assert d[0, 0] == pytest.approx(0.0, abs=1e-9)
        assert d[0, 1] > 0

    @given(
        sec=arrays(np.float64, (3, 4), elements=st.floats(-100, 100)),
        wild=arrays(np.float64, (5, 4), elements=st.floats(-100, 100)),
    )
    @settings(max_examples=50, deadline=None)
    def test_nonnegative(self, sec, wild):
        if np.all(np.abs(sec) < 1e-300) and np.all(np.abs(wild) < 1e-300):
            return  # all columns below the subnormal floor carry no signal
        d = weighted_distance_matrix(sec, wild)
        assert np.all(d >= 0)
        assert np.all(np.isfinite(d))
