"""Tests for max-abs weighting and the weighted distance matrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import FeatureError
from repro.features import DistanceEngine, MaxAbsWeighter, weighted_distance_matrix


class TestMaxAbsWeighter:
    def test_weights_formula(self):
        m = np.array([[2.0, -4.0], [1.0, 2.0]])
        w = MaxAbsWeighter().fit(m)
        assert np.allclose(w.weights, [0.5, 0.25])

    def test_transform_in_range(self):
        m = np.array([[10.0, -3.0], [-20.0, 1.0], [5.0, 0.0]])
        out = MaxAbsWeighter().fit_transform(m)
        assert np.all(np.abs(out) <= 1.0 + 1e-12)

    def test_sign_preserved(self):
        m = np.array([[5.0, -2.0], [-5.0, 2.0]])
        out = MaxAbsWeighter().fit_transform(m)
        assert np.all(np.sign(out) == np.sign(m))

    def test_constant_zero_column_weight_zero(self):
        m = np.array([[0.0, 1.0], [0.0, 2.0]])
        w = MaxAbsWeighter().fit(m)
        assert w.weights[0] == 0.0

    def test_fit_over_union(self):
        a = np.array([[1.0]])
        b = np.array([[4.0]])
        w = MaxAbsWeighter().fit(a, b)
        assert w.weights[0] == 0.25

    def test_unfitted_raises(self):
        with pytest.raises(FeatureError):
            MaxAbsWeighter().transform(np.ones((2, 2)))

    def test_empty_fit_raises(self):
        with pytest.raises(FeatureError):
            MaxAbsWeighter().fit(np.zeros((0, 3)))

    def test_shape_mismatch_raises(self):
        w = MaxAbsWeighter().fit(np.ones((2, 3)))
        with pytest.raises(FeatureError):
            w.transform(np.ones((2, 4)))


class TestWeightedDistanceMatrix:
    def test_matches_naive_computation(self):
        rng = np.random.default_rng(0)
        sec = rng.uniform(-5, 5, size=(4, 6))
        wild = rng.uniform(-5, 5, size=(7, 6))
        d = weighted_distance_matrix(sec, wild)
        w = MaxAbsWeighter().fit(sec, wild)
        s, x = w.transform(sec), w.transform(wild)
        naive = np.array([[np.linalg.norm(s[i] - x[j]) for j in range(7)] for i in range(4)])
        assert np.allclose(d, naive, atol=1e-9)

    def test_shape(self):
        d = weighted_distance_matrix(np.ones((3, 5)), np.ones((8, 5)))
        assert d.shape == (3, 8)

    def test_identical_rows_zero_distance(self):
        sec = np.array([[1.0, 2.0, 3.0]])
        wild = np.array([[1.0, 2.0, 3.0], [9.0, 9.0, 9.0]])
        d = weighted_distance_matrix(sec, wild)
        assert d[0, 0] == pytest.approx(0.0, abs=1e-9)
        assert d[0, 1] > 0

    @given(
        sec=arrays(np.float64, (3, 4), elements=st.floats(-100, 100)),
        wild=arrays(np.float64, (5, 4), elements=st.floats(-100, 100)),
    )
    @settings(max_examples=50, deadline=None)
    def test_nonnegative(self, sec, wild):
        if np.all(np.abs(sec) < 1e-300) and np.all(np.abs(wild) < 1e-300):
            return  # all columns below the subnormal floor carry no signal
        d = weighted_distance_matrix(sec, wild)
        assert np.all(d >= 0)
        assert np.all(np.isfinite(d))


class TestDistanceEngine:
    """The incremental engine must be indistinguishable from full rebuilds."""

    def _random_sides(self, seed=0, m=5, n=20, d=6):
        rng = np.random.default_rng(seed)
        return rng.uniform(-5, 5, size=(m, d)), rng.uniform(-5, 5, size=(n, d))

    def test_reset_matches_full(self):
        sec, wild = self._random_sides()
        engine = DistanceEngine()
        assert np.array_equal(engine.reset(sec, wild), weighted_distance_matrix(sec, wild))

    def test_update_appends_rows_and_masks_columns(self):
        sec, wild = self._random_sides()
        engine = DistanceEngine()
        engine.reset(sec, wild)
        d = engine.update(new_security=wild[2:4], drop_wild=[2, 3])
        assert d.shape == (7, 20)
        assert engine.alive_columns == 18
        assert np.all(np.isinf(d[:, [2, 3]]))
        live = [i for i in range(20) if i not in (2, 3)]
        ref = weighted_distance_matrix(np.vstack([sec, wild[2:4]]), wild[live])
        assert np.allclose(d[:, live], ref, atol=1e-9)

    def test_multi_round_parity_with_from_scratch(self):
        """Property-style drive: several rounds of random deltas stay within
        1e-9 of a from-scratch rebuild over the live pool."""
        for trial in range(5):
            rng = np.random.default_rng(100 + trial)
            sec, wild = self._random_sides(seed=200 + trial, m=4, n=30)
            engine = DistanceEngine()
            engine.reset(sec, wild)
            security = sec
            live = np.ones(len(wild), dtype=bool)
            for _ in range(4):
                live_idx = np.flatnonzero(live)
                if len(live_idx) <= len(security):
                    break
                reviewed = rng.choice(live_idx, size=min(3, len(live_idx) - 1), replace=False)
                verified = reviewed[: rng.integers(0, len(reviewed) + 1)]
                live[reviewed] = False
                security = np.vstack([security, wild[verified]]) if len(verified) else security
                d = engine.update(
                    new_security=wild[verified] if len(verified) else None,
                    drop_wild=reviewed,
                )
                live_idx = np.flatnonzero(live)
                ref = weighted_distance_matrix(security, wild[live_idx])
                assert np.allclose(d[:, live_idx], ref, atol=1e-9)
                assert np.all(np.isinf(d[:, ~live]))

    def test_fallback_when_max_holder_dropped(self):
        """Dropping the single row holding a column's max-abs must trigger a
        full recompute (the fitted weights went stale) and still match."""
        from repro.obs import ObsRegistry

        sec = np.array([[1.0, 1.0], [2.0, 0.5]])
        wild = np.array([[10.0, 1.0], [1.0, 1.0], [2.0, 1.5], [0.5, 0.2]])
        obs = ObsRegistry()
        engine = DistanceEngine(obs=obs)
        engine.reset(sec, wild)
        assert obs.count("distance_full_recomputes") == 1
        d = engine.update(drop_wild=[0])  # wild[0] held the max of column 0
        assert obs.count("distance_full_recomputes") == 2
        ref = weighted_distance_matrix(sec, wild[1:])
        assert np.allclose(d[:, 1:], ref, atol=1e-9)

    def test_no_fallback_when_maxima_survive(self):
        from repro.obs import ObsRegistry

        sec = np.array([[1.0, 1.0], [2.0, 0.5]])
        wild = np.array([[10.0, 1.0], [10.0, 1.0], [2.0, 1.5], [0.5, 0.2]])
        obs = ObsRegistry()
        engine = DistanceEngine(obs=obs)
        engine.reset(sec, wild)
        engine.update(drop_wild=[0])  # wild[1] still holds the column-0 max
        assert obs.count("distance_full_recomputes") == 1
        assert obs.count("distance_incremental_updates") == 1

    def test_tolerance_trades_exactness_for_fewer_recomputes(self):
        from repro.obs import ObsRegistry

        sec = np.array([[1.0, 1.0], [2.0, 0.5]])
        wild = np.array([[10.0, 1.0], [1.0, 1.0], [2.0, 1.5], [0.5, 0.2]])
        obs = ObsRegistry()
        engine = DistanceEngine(tolerance=10.0, obs=obs)
        engine.reset(sec, wild)
        d = engine.update(drop_wild=[0])
        # The (large) tolerance swallowed the drift: no refit happened, so
        # live cells differ from an exact rebuild but the shape is intact.
        assert obs.count("distance_full_recomputes") == 1
        ref = weighted_distance_matrix(sec, wild[1:])
        assert not np.allclose(d[:, 1:], ref, atol=1e-9)

    def test_matrix_is_buffer_view_across_updates(self):
        sec, wild = self._random_sides()
        engine = DistanceEngine()
        first = engine.reset(sec, wild)
        engine.update(drop_wild=[0])
        assert np.all(np.isinf(engine.matrix[:, 0]))
        assert engine.shape == (5, 20)
        assert first.shape == (5, 20)

    def test_reset_empty_raises(self):
        engine = DistanceEngine()
        with pytest.raises(FeatureError):
            engine.reset(np.zeros((0, 4)), np.ones((3, 4)))
        with pytest.raises(FeatureError):
            engine.reset(np.ones((3, 4)), np.zeros((0, 4)))

    def test_update_before_reset_raises(self):
        with pytest.raises(FeatureError):
            DistanceEngine().update(new_security=np.ones((1, 4)))
        with pytest.raises(FeatureError):
            _ = DistanceEngine().matrix

    def test_negative_tolerance_rejected(self):
        with pytest.raises(FeatureError):
            DistanceEngine(tolerance=-0.1)

    def test_masking_every_column_raises(self):
        sec, wild = self._random_sides(m=2, n=4)
        engine = DistanceEngine()
        engine.reset(sec, wild)
        with pytest.raises(FeatureError):
            engine.update(drop_wild=[0, 1, 2, 3])

    def test_fit_maxima_matches_fit(self):
        sec, wild = self._random_sides()
        by_rows = MaxAbsWeighter().fit(sec, wild)
        by_max = MaxAbsWeighter().fit_maxima(
            np.max(np.abs(np.vstack([sec, wild])), axis=0)
        )
        assert np.array_equal(by_rows.weights, by_max.weights)
