"""Tests for the 60-dimensional feature extractor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import (
    FEATURE_COUNT,
    FEATURE_NAMES,
    RepoContext,
    extract_feature_matrix,
    extract_features,
    feature_index,
)
from repro.patch import parse_patch


def f(vec, name):
    return vec[feature_index(name)]


class TestVectorLayout:
    def test_sixty_features(self):
        assert FEATURE_COUNT == 60
        assert len(FEATURE_NAMES) == 60

    def test_names_unique(self):
        assert len(set(FEATURE_NAMES)) == 60

    def test_feature_index_round_trip(self):
        for i, name in enumerate(FEATURE_NAMES):
            assert feature_index(name) == i

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            feature_index("bogus")


class TestListing1:
    """Ground-truth features of the paper's own example patch."""

    @pytest.fixture()
    def vec(self, listing_1):
        return extract_features(parse_patch(listing_1))

    def test_basic_counts(self, vec):
        assert f(vec, "changed_lines") == 2
        assert f(vec, "hunks") == 1
        assert f(vec, "added_lines") == 1
        assert f(vec, "removed_lines") == 1
        assert f(vec, "net_lines") == 0

    def test_if_statements(self, vec):
        assert f(vec, "added_if_statements") == 1
        assert f(vec, "removed_if_statements") == 1
        assert f(vec, "total_if_statements") == 2
        assert f(vec, "net_if_statements") == 0

    def test_operators(self, vec):
        assert f(vec, "added_logical_operators") == 1  # the new &&
        assert f(vec, "net_logical_operators") == 1
        assert f(vec, "added_relational_operators") == 1  # the new >
        assert f(vec, "added_bitwise_operators") == 1  # & in both sides
        assert f(vec, "removed_bitwise_operators") == 1

    def test_functions(self, vec):
        assert f(vec, "total_modified_functions") == 1
        assert f(vec, "affected_files") == 1
        assert f(vec, "affected_functions") == 1

    def test_levenshtein_features(self, vec):
        # "  if (byte[i] & 0x40)" -> "  if (byte[i] & 0x40 && i > 0)" adds
        # " && i > 0" = 9 chars.
        assert f(vec, "lev_mean_raw") == 9
        assert f(vec, "lev_min_raw") == f(vec, "lev_max_raw") == 9
        # Abstractly: && VAR > NUM = 4 extra tokens.
        assert f(vec, "lev_mean_abs") == 4

    def test_no_same_hunks(self, vec):
        assert f(vec, "same_hunks_raw") == 0
        assert f(vec, "same_hunks_abs") == 0


class TestQuadConsistency:
    def test_total_and_net_identities(self, tiny_world):
        shas = tiny_world.all_shas()[:40]
        quads = [
            "lines", "characters", "if_statements", "loops", "function_calls",
            "arithmetic_operators", "relational_operators", "logical_operators",
            "bitwise_operators", "memory_operators", "variables",
        ]
        for sha in shas:
            vec = extract_features(tiny_world.patch_for(sha))
            for prefix in quads:
                added = f(vec, f"added_{prefix}")
                removed = f(vec, f"removed_{prefix}")
                assert f(vec, f"total_{prefix}") == added + removed
                assert f(vec, f"net_{prefix}") == added - removed


class TestMoveDetection:
    MOVE_PATCH = """commit 3333333333333333333333333333333333333333
Author: A <a@b.c>
Date:   x

    move stmt

diff --git a/a.c b/a.c
--- a/a.c
+++ b/a.c
@@ -1,6 +1,6 @@
 int f(void) {
+    x = compute();
     prepare();
-    x = compute();
     finish();
     return x;
 }
"""

    def test_same_hunk_detected(self):
        vec = extract_features(parse_patch(self.MOVE_PATCH))
        assert f(vec, "same_hunks_raw") == 1
        assert f(vec, "same_hunks_abs") == 1


class TestRepoContext:
    def test_percentages_with_context(self, listing_1):
        patch = parse_patch(listing_1)
        vec = extract_features(patch, RepoContext(total_files=50, total_functions=200))
        assert f(vec, "affected_files_pct") == pytest.approx(1 / 50)
        assert f(vec, "affected_functions_pct") == pytest.approx(1 / 200)

    def test_fallback_without_context(self, listing_1):
        vec = extract_features(parse_patch(listing_1))
        assert f(vec, "affected_files_pct") == 1.0


class TestMatrix:
    def test_matrix_shape(self, tiny_world):
        patches = tiny_world.patches_for(tiny_world.all_shas()[:10])
        m = extract_feature_matrix(patches)
        assert m.shape == (10, 60)
        assert m.dtype == np.float64

    def test_empty_matrix(self):
        assert extract_feature_matrix([]).shape == (0, 60)

    def test_deterministic(self, listing_1):
        p = parse_patch(listing_1)
        assert np.array_equal(extract_features(p), extract_features(p))


class TestEmptyPatch:
    def test_empty_patch_zero_vector_mostly(self):
        from repro.patch import Patch

        vec = extract_features(Patch("0" * 40, "msg", ()))
        assert f(vec, "changed_lines") == 0
        assert f(vec, "hunks") == 0
        assert f(vec, "affected_files") == 0
