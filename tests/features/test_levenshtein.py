"""Tests for Levenshtein distance."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import levenshtein, normalized_levenshtein

words = st.text(alphabet="abcd", max_size=15)


def naive_levenshtein(a, b):
    """Full-matrix reference DP, no fast paths — the oracle for properties."""
    n, m = len(a), len(b)
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        dp[i][0] = i
    for j in range(m + 1):
        dp[0][j] = j
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            dp[i][j] = min(dp[i - 1][j] + 1, dp[i][j - 1] + 1, dp[i - 1][j - 1] + cost)
    return dp[n][m]


class TestKnownDistances:
    def test_kitten_sitting(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_identical(self):
        assert levenshtein("abc", "abc") == 0

    def test_empty_vs_word(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_both_empty(self):
        assert levenshtein("", "") == 0

    def test_single_substitution(self):
        assert levenshtein("cat", "bat") == 1

    def test_token_sequences(self):
        a = ["if", "(", "VAR", ")"]
        b = ["if", "(", "VAR", "&&", "VAR", ")"]
        assert levenshtein(a, b) == 2

    def test_truncation_bound(self):
        # Distances are capped by the truncation length.
        assert levenshtein("a" * 5000, "b" * 5000, max_len=100) == 100


class TestNormalized:
    def test_range(self):
        assert normalized_levenshtein("abc", "xyz") == 1.0
        assert normalized_levenshtein("abc", "abc") == 0.0

    def test_empty(self):
        assert normalized_levenshtein("", "") == 0.0


class TestProperties:
    @given(a=words, b=words)
    @settings(max_examples=200, deadline=None)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(a=words, b=words)
    @settings(max_examples=200, deadline=None)
    def test_bounds(self, a, b):
        d = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(a=words)
    @settings(max_examples=100, deadline=None)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(a=words, b=words, c=words)
    @settings(max_examples=150, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(a=words, b=words)
    @settings(max_examples=100, deadline=None)
    def test_zero_iff_equal(self, a, b):
        assert (levenshtein(a, b) == 0) == (a == b)

    @given(a=words, b=words)
    @settings(max_examples=300, deadline=None)
    def test_matches_naive_dp(self, a, b):
        # The equal-input and prefix/suffix fast paths must not change any
        # distance; check against the full-matrix reference.
        assert levenshtein(a, b) == naive_levenshtein(a, b)

    @given(pre=words, a=words, b=words, suf=words)
    @settings(max_examples=200, deadline=None)
    def test_shared_affixes_preserved(self, pre, a, b, suf):
        # Explicitly exercise the stripping path with forced common affixes.
        assert levenshtein(pre + a + suf, pre + b + suf) == naive_levenshtein(
            pre + a + suf, pre + b + suf
        )

    @given(a=st.lists(st.sampled_from(["if", "(", "VAR", ")", "NUM"]), max_size=10),
           b=st.lists(st.sampled_from(["if", "(", "VAR", ")", "NUM"]), max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_matches_naive_dp_on_token_lists(self, a, b):
        assert levenshtein(a, b) == naive_levenshtein(a, b)
