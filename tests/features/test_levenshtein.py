"""Tests for Levenshtein distance."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import levenshtein, normalized_levenshtein

words = st.text(alphabet="abcd", max_size=15)


class TestKnownDistances:
    def test_kitten_sitting(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_identical(self):
        assert levenshtein("abc", "abc") == 0

    def test_empty_vs_word(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_both_empty(self):
        assert levenshtein("", "") == 0

    def test_single_substitution(self):
        assert levenshtein("cat", "bat") == 1

    def test_token_sequences(self):
        a = ["if", "(", "VAR", ")"]
        b = ["if", "(", "VAR", "&&", "VAR", ")"]
        assert levenshtein(a, b) == 2

    def test_truncation_bound(self):
        # Distances are capped by the truncation length.
        assert levenshtein("a" * 5000, "b" * 5000, max_len=100) == 100


class TestNormalized:
    def test_range(self):
        assert normalized_levenshtein("abc", "xyz") == 1.0
        assert normalized_levenshtein("abc", "abc") == 0.0

    def test_empty(self):
        assert normalized_levenshtein("", "") == 0.0


class TestProperties:
    @given(a=words, b=words)
    @settings(max_examples=200, deadline=None)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(a=words, b=words)
    @settings(max_examples=200, deadline=None)
    def test_bounds(self, a, b):
        d = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(a=words)
    @settings(max_examples=100, deadline=None)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(a=words, b=words, c=words)
    @settings(max_examples=150, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(a=words, b=words)
    @settings(max_examples=100, deadline=None)
    def test_zero_iff_equal(self, a, b):
        assert (levenshtein(a, b) == 0) == (a == b)
