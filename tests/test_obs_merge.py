"""Property tests for the cross-process obs merge protocol.

The parallel paths (feature cache, token cache, ``fit_many``, the random
forest, ``lint_sources``) merge worker snapshots chunk by chunk, and the
chunking is an implementation detail — so the merged result must not depend
on how observations were grouped (associativity) or, for the order-free
parts, on the order the groups arrive in (commutativity).

Exact laws: counters and timer call counts are integer sums, histograms are
multisets — associative AND commutative.  Timer seconds are float sums, so
associativity only holds approximately; we assert it with a tolerance.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import ObsRegistry, ObsSnapshot

NAMES = st.sampled_from(["extract", "tokenize", "lint", "rf_tree", "hits"])

SNAPSHOTS = st.builds(
    ObsSnapshot,
    timers=st.dictionaries(NAMES, st.floats(0.0, 10.0), max_size=4),
    timer_calls=st.dictionaries(NAMES, st.integers(0, 1000), max_size=4),
    counters=st.dictionaries(NAMES, st.integers(0, 10**6), max_size=4),
    histograms=st.dictionaries(
        NAMES, st.lists(st.floats(0.0, 10.0), max_size=6), max_size=4
    ),
)


def merged(*snaps: ObsSnapshot) -> ObsRegistry:
    obs = ObsRegistry()
    for snap in snaps:
        obs.merge(snap)
    return obs


def hist_multisets(obs: ObsRegistry) -> dict[str, Counter]:
    return {name: Counter(values) for name, values in obs.histograms.items()}


class TestMergeLaws:
    @settings(max_examples=200, deadline=None)
    @given(a=SNAPSHOTS, b=SNAPSHOTS)
    def test_commutative(self, a, b):
        ab, ba = merged(a, b), merged(b, a)
        assert ab.counters == ba.counters
        assert ab.timer_calls == ba.timer_calls
        assert hist_multisets(ab) == hist_multisets(ba)
        # Float sums of two terms commute exactly.
        assert ab.timers == ba.timers

    @settings(max_examples=200, deadline=None)
    @given(a=SNAPSHOTS, b=SNAPSHOTS, c=SNAPSHOTS)
    def test_associative(self, a, b, c):
        left = ObsRegistry()
        left.merge(merged(a, b))
        left.merge(c)
        right = ObsRegistry()
        right.merge(a)
        right.merge(merged(b, c))
        assert left.counters == right.counters
        assert left.timer_calls == right.timer_calls
        assert hist_multisets(left) == hist_multisets(right)
        assert set(left.timers) == set(right.timers)
        for name in left.timers:
            assert left.timers[name] == pytest.approx(right.timers[name])

    @settings(max_examples=100, deadline=None)
    @given(a=SNAPSHOTS)
    def test_empty_is_identity(self, a):
        obs = merged(a)
        obs.merge(ObsSnapshot())
        base = merged(a)
        assert obs.counters == base.counters
        assert obs.timers == base.timers
        assert obs.timer_calls == base.timer_calls
        assert hist_multisets(obs) == hist_multisets(base)

    @settings(max_examples=100, deadline=None)
    @given(chunks=st.lists(SNAPSHOTS, min_size=1, max_size=5))
    def test_chunking_invariance(self, chunks):
        """One merge per chunk == one merge of the pre-merged whole."""
        per_chunk = merged(*chunks)
        pre = ObsRegistry()
        pre.merge(merged(*chunks).snapshot())
        assert per_chunk.counters == pre.counters
        assert per_chunk.timer_calls == pre.timer_calls
        assert hist_multisets(per_chunk) == hist_multisets(pre)
