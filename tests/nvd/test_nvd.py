"""Tests for the NVD simulator and crawler."""

import pytest

from repro.errors import NvdError
from repro.nvd import (
    COMMIT_URL_RE,
    CveRecord,
    NvdConfig,
    NvdCrawler,
    Reference,
    build_nvd,
)


@pytest.fixture(scope="module")
def nvd(tiny_world):
    return build_nvd(tiny_world, NvdConfig(seed=3))


@pytest.fixture(scope="module")
def crawler(tiny_world):
    return NvdCrawler(tiny_world)


class TestRecords:
    def test_reference_patch_tag(self):
        assert Reference("u", tags=("Patch",)).is_patch
        assert not Reference("u").is_patch

    def test_record_patch_references(self):
        rec = CveRecord(
            "CVE-2020-1234",
            references=(Reference("a"), Reference("b", tags=("Patch",))),
        )
        assert [r.url for r in rec.patch_references()] == ["b"]

    def test_record_year(self):
        assert CveRecord("CVE-2019-20912").year == 2019


class TestDatabase:
    def test_one_record_per_reported_cve(self, tiny_world, nvd):
        assert len(nvd) == len(tiny_world.nvd_shas())

    def test_lookup(self, tiny_world, nvd):
        cve = tiny_world.label(tiny_world.nvd_shas()[0]).cve_id
        rec = nvd.get(cve)
        assert rec.cve_id == cve
        assert cve in nvd

    def test_unknown_cve_raises(self, nvd):
        with pytest.raises(NvdError):
            nvd.get("CVE-1900-1")

    def test_records_sorted(self, nvd):
        ids = [r.cve_id for r in nvd.all_records()]
        assert ids == sorted(ids)

    def test_most_records_have_patch_links(self, nvd):
        with_links = len(nvd.records_with_patch_links())
        assert with_links >= 0.7 * len(nvd)

    def test_some_records_missing_links(self, tiny_world):
        big_nvd = build_nvd(tiny_world, NvdConfig(missing_link_fraction=0.5, seed=1))
        assert len(big_nvd.records_with_patch_links()) < len(big_nvd)

    def test_cwe_and_cvss_populated(self, nvd):
        for rec in nvd.all_records():
            assert rec.cwe_id.startswith(("CWE-", "NVD-CWE"))
            assert 0.0 <= rec.cvss_score <= 10.0

    def test_config_validation(self):
        with pytest.raises(NvdError):
            NvdConfig(missing_link_fraction=2.0).validate()


class TestUrlPattern:
    def test_matches_commit_url(self):
        url = "https://github.com/owner/repo/commit/" + "a" * 40
        m = COMMIT_URL_RE.match(url)
        assert m and m.group("sha") == "a" * 40

    @pytest.mark.parametrize(
        "url",
        [
            "https://github.com/owner/repo/pull/5",
            "https://github.com/owner/repo/commit/short",
            "https://bugzilla.example.org/1",
        ],
    )
    def test_rejects_non_commit_urls(self, url):
        assert COMMIT_URL_RE.match(url) is None


class TestCrawler:
    def test_fetch_patch_text(self, tiny_world, crawler):
        sha = tiny_world.nvd_shas()[0]
        url = tiny_world.repo_of(sha).commit_url(sha)
        text = crawler.fetch_patch_text(url)
        assert text.startswith(f"From {sha}")

    def test_fetch_bad_url_raises(self, crawler):
        with pytest.raises(NvdError):
            crawler.fetch_patch_text("https://example.com/nope")

    def test_fetch_unknown_commit_raises(self, crawler):
        with pytest.raises(NvdError):
            crawler.fetch_patch_text("https://github.com/no/repo/commit/" + "b" * 40)

    def test_crawl_extracts_patches(self, tiny_world, nvd, crawler):
        result = crawler.crawl(nvd)
        assert len(result.patches) > 0
        assert len(result.patches) <= len(nvd)
        # Missing links are accounted for.
        assert result.skipped_no_link == len(nvd) - len(nvd.records_with_patch_links())

    def test_crawled_patches_are_c_only(self, nvd, crawler):
        result = crawler.crawl(nvd)
        for patch in result.patches.values():
            assert all(f.is_c_cpp for f in patch.files)

    def test_crawled_shas_exist_in_world(self, tiny_world, nvd, crawler):
        result = crawler.crawl(nvd)
        for patch in result.patches.values():
            assert patch.sha in tiny_world.labels

    def test_summary_format(self, nvd, crawler):
        summary = crawler.crawl(nvd).summary()
        assert "patches from" in summary

    def test_wrong_links_crawl_without_error(self, tiny_world):
        noisy_nvd = build_nvd(tiny_world, NvdConfig(wrong_link_fraction=0.5, seed=2))
        result = NvdCrawler(tiny_world).crawl(noisy_nvd)
        # Wrong links resolve to real commits, so they still produce patches;
        # the point is the pipeline inherits that label noise silently.
        assert len(result.patches) > 0
