"""Tests for the exception hierarchy and the top-level public API."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    ALL_ERRORS = [
        errors.PatchFormatError,
        errors.PatchApplyError,
        errors.LexError,
        errors.ParseError,
        errors.FeatureError,
        errors.ModelError,
        errors.NotFittedError,
        errors.VcsError,
        errors.ObjectNotFoundError,
        errors.CorpusError,
        errors.NvdError,
        errors.AugmentationError,
        errors.SynthesisError,
    ]

    @pytest.mark.parametrize("exc", ALL_ERRORS)
    def test_derives_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_not_fitted_is_model_error(self):
        assert issubclass(errors.NotFittedError, errors.ModelError)

    def test_object_not_found_is_vcs_error(self):
        assert issubclass(errors.ObjectNotFoundError, errors.VcsError)

    def test_patch_format_error_line_number(self):
        err = errors.PatchFormatError("bad hunk", line_no=7)
        assert "line 7" in str(err)
        assert err.line_no == 7

    def test_patch_format_error_without_line(self):
        err = errors.PatchFormatError("bad header")
        assert err.line_no is None

    def test_catch_all_at_boundary(self):
        with pytest.raises(errors.ReproError):
            raise errors.SynthesisError("boom")


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__

    def test_exports(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_parse_and_extract_round(self, listing_1):
        patch = repro.parse_patch(listing_1)
        vec = repro.extract_features(patch)
        assert vec.shape == (60,)

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.core
        import repro.corpus
        import repro.diffing
        import repro.features
        import repro.lang
        import repro.ml
        import repro.nvd
        import repro.patch
        import repro.synthesis
        import repro.vcs

    def test_all_lists_are_sorted_sets(self):
        """Each subpackage's __all__ has no duplicates."""
        import repro.core
        import repro.features
        import repro.lang
        import repro.ml
        import repro.patch

        for mod in (repro.core, repro.features, repro.lang, repro.ml, repro.patch):
            assert len(mod.__all__) == len(set(mod.__all__)), mod.__name__
