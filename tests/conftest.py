"""Shared fixtures: session-scoped tiny worlds so tests stay fast."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import TINY, ExperimentWorld
from repro.corpus import WorldConfig, build_world


@pytest.fixture(scope="session")
def tiny_world():
    """A small but fully featured world shared by read-only tests."""
    return build_world(
        WorldConfig(n_commits=350, n_repos=6, files_per_repo=4, seed=42, security_fraction=0.10)
    )


@pytest.fixture(scope="session")
def experiment_world():
    """A TINY-scale ExperimentWorld shared by experiment/integration tests."""
    return ExperimentWorld(TINY, seed=2021)


LISTING_1 = """commit b84c2cab55948a5ee70860779b2640913e3ee1ed
Author: Dev One <d1@example.org>
Date:   Tue Nov 5 10:00:00 2019 -0500

    prevent stack underflow in bit_write_UMC

diff --git a/src/bits.c b/src/bits.c
index 014b04fe4..a3692bdc6 100644
--- a/src/bits.c
+++ b/src/bits.c
@@ -953,7 +953,7 @@ bit_write_UMC (Bit_Chain *dat, BITCODE_UMC val)
     if (byte[i] & 0x7f)
       break;

-  if (byte[i] & 0x40)
+  if (byte[i] & 0x40 && i > 0)
     byte[i] &= 0x7f;
   for (j = 4; j >= i; j--)
     {
"""

LISTING_2 = """commit c3b3c274cf7911121f84746cd80a152455f7ec97
Author: Dev Two <d2@example.org>
Date:   Mon Mar 2 09:00:00 2015 +0100

    only freeze the init process

diff --git a/main.c b/main.c
index 6a3eee2eb..b8ad59018 100644
--- a/main.c
+++ b/main.c
@@ -575,5 +575,8 @@ finish:

         dbus_shutdown();

+        if (getpid() == 1)
+                freeze();
+
         return retval;
 }
"""


@pytest.fixture()
def listing_1() -> str:
    """The paper's Listing 1 (security patch, CVE-2019-20912)."""
    return LISTING_1


@pytest.fixture()
def listing_2() -> str:
    """The paper's Listing 2 (non-security patch in systemd)."""
    return LISTING_2
