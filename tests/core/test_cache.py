"""Tests for the per-world feature cache."""

import numpy as np
import pytest

from repro.core import PatchFeatureCache
from repro.features import FEATURE_COUNT, feature_index


class TestPatchFeatureCache:
    def test_vector_shape(self, tiny_world):
        cache = PatchFeatureCache(tiny_world)
        vec = cache.vector(tiny_world.all_shas()[0])
        assert vec.shape == (FEATURE_COUNT,)

    def test_vector_cached(self, tiny_world):
        cache = PatchFeatureCache(tiny_world)
        sha = tiny_world.all_shas()[0]
        assert cache.vector(sha) is cache.vector(sha)
        assert len(cache) == 1

    def test_matrix_order_matches_input(self, tiny_world):
        cache = PatchFeatureCache(tiny_world)
        shas = tiny_world.all_shas()[:5]
        matrix = cache.matrix(shas)
        for i, sha in enumerate(shas):
            assert np.array_equal(matrix[i], cache.vector(sha))

    def test_empty_matrix(self, tiny_world):
        assert PatchFeatureCache(tiny_world).matrix([]).shape == (0, FEATURE_COUNT)

    def test_repo_context_used(self, tiny_world):
        """With context, affected-files percent reflects the repo size."""
        with_ctx = PatchFeatureCache(tiny_world, use_repo_context=True)
        without = PatchFeatureCache(tiny_world, use_repo_context=False)
        idx = feature_index("affected_files_pct")
        sha = tiny_world.all_shas()[0]
        # Context divides by total repo files (>1); fallback uses 1.0.
        assert with_ctx.vector(sha)[idx] < without.vector(sha)[idx]

    def test_unknown_sha_raises(self, tiny_world):
        cache = PatchFeatureCache(tiny_world)
        with pytest.raises(KeyError):
            cache.vector("f" * 40)
