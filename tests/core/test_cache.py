"""Tests for the per-world feature and token-sequence caches."""

import numpy as np
import pytest

from repro.core import PatchFeatureCache, TokenSequenceCache
from repro.features import FEATURE_COUNT, feature_index
from repro.ml import patch_token_sequence


class TestPatchFeatureCache:
    def test_vector_shape(self, tiny_world):
        cache = PatchFeatureCache(tiny_world)
        vec = cache.vector(tiny_world.all_shas()[0])
        assert vec.shape == (FEATURE_COUNT,)

    def test_vector_cached(self, tiny_world):
        cache = PatchFeatureCache(tiny_world)
        sha = tiny_world.all_shas()[0]
        assert cache.vector(sha) is cache.vector(sha)
        assert len(cache) == 1

    def test_matrix_order_matches_input(self, tiny_world):
        cache = PatchFeatureCache(tiny_world)
        shas = tiny_world.all_shas()[:5]
        matrix = cache.matrix(shas)
        for i, sha in enumerate(shas):
            assert np.array_equal(matrix[i], cache.vector(sha))

    def test_empty_matrix(self, tiny_world):
        assert PatchFeatureCache(tiny_world).matrix([]).shape == (0, FEATURE_COUNT)

    def test_repo_context_used(self, tiny_world):
        """With context, affected-files percent reflects the repo size."""
        with_ctx = PatchFeatureCache(tiny_world, use_repo_context=True)
        without = PatchFeatureCache(tiny_world, use_repo_context=False)
        idx = feature_index("affected_files_pct")
        sha = tiny_world.all_shas()[0]
        # Context divides by total repo files (>1); fallback uses 1.0.
        assert with_ctx.vector(sha)[idx] < without.vector(sha)[idx]

    def test_unknown_sha_raises(self, tiny_world):
        cache = PatchFeatureCache(tiny_world)
        with pytest.raises(KeyError):
            cache.vector("f" * 40)


class TestParallelExtraction:
    def test_workers_match_serial(self, tiny_world):
        shas = tiny_world.all_shas()[:60]
        serial = PatchFeatureCache(tiny_world).matrix(shas)
        parallel = PatchFeatureCache(tiny_world).matrix(shas, workers=2)
        assert np.array_equal(serial, parallel)

    def test_default_workers_used(self, tiny_world):
        shas = tiny_world.all_shas()[:40]
        cache = PatchFeatureCache(tiny_world, default_workers=2)
        assert np.array_equal(
            cache.matrix(shas), PatchFeatureCache(tiny_world).matrix(shas)
        )

    def test_small_batches_stay_serial(self, tiny_world):
        # Below ~2 chunks per worker the pool is skipped; results identical.
        shas = tiny_world.all_shas()[:3]
        cache = PatchFeatureCache(tiny_world)
        assert cache.matrix(shas, workers=8).shape == (3, FEATURE_COUNT)


class TestNpzPersistence:
    def test_round_trip(self, tiny_world, tmp_path):
        shas = tiny_world.all_shas()[:25]
        path = tmp_path / "vectors.npz"
        cache = PatchFeatureCache(tiny_world, persist_path=path)
        matrix = cache.matrix(shas)
        cache.save()
        assert path.exists()

        reloaded = PatchFeatureCache(tiny_world, persist_path=path)
        assert len(reloaded) == len(set(shas))
        assert reloaded.obs.count("npz_vectors_loaded") == len(set(shas))
        assert np.array_equal(reloaded.matrix(shas), matrix)
        assert reloaded.obs.count("vectors_extracted") == 0

    def test_save_without_path_raises(self, tiny_world):
        with pytest.raises(ValueError):
            PatchFeatureCache(tiny_world).save()

    def test_save_to_explicit_path(self, tiny_world, tmp_path):
        cache = PatchFeatureCache(tiny_world)
        cache.vector(tiny_world.all_shas()[0])
        target = cache.save(tmp_path / "explicit.npz")
        assert target.exists()

    def test_corrupt_file_is_cold_cache(self, tiny_world, tmp_path):
        path = tmp_path / "vectors.npz"
        path.write_bytes(b"not an npz archive")
        cache = PatchFeatureCache(tiny_world, persist_path=path)
        assert len(cache) == 0
        assert cache.vector(tiny_world.all_shas()[0]).shape == (FEATURE_COUNT,)

    def test_context_flag_mismatch_ignored(self, tiny_world, tmp_path):
        path = tmp_path / "vectors.npz"
        cache = PatchFeatureCache(tiny_world, use_repo_context=True, persist_path=path)
        cache.vector(tiny_world.all_shas()[0])
        cache.save()
        other = PatchFeatureCache(tiny_world, use_repo_context=False, persist_path=path)
        assert len(other) == 0  # contextless vectors differ; file must be ignored


class TestTokenSequenceCache:
    def test_matches_direct_tokenization(self, tiny_world):
        cache = TokenSequenceCache(tiny_world)
        for sha in tiny_world.all_shas()[:10]:
            assert cache.sequence(sha) == patch_token_sequence(tiny_world.patch_for(sha))

    def test_hit_and_miss_counters(self, tiny_world):
        cache = TokenSequenceCache(tiny_world)
        sha = tiny_world.all_shas()[0]
        assert cache.sequence(sha) is cache.sequence(sha)
        assert cache.obs.count("token_cache_misses") == 1
        assert cache.obs.count("token_cache_hits") == 1
        assert len(cache) == 1

    def test_sequence_of_memoizes_by_sha(self, tiny_world):
        cache = TokenSequenceCache(tiny_world)
        patch = tiny_world.patch_for(tiny_world.all_shas()[0])
        assert cache.sequence_of(patch) is cache.sequence_of(patch)
        assert cache.sequence_of(patch) == patch_token_sequence(patch)

    def test_sequences_preserve_order_and_duplicates(self, tiny_world):
        cache = TokenSequenceCache(tiny_world)
        shas = tiny_world.all_shas()[:4]
        shas = shas + [shas[0]]
        seqs = cache.sequences(shas)
        assert len(seqs) == 5
        assert seqs[0] == seqs[-1]

    def test_parallel_matches_serial(self, tiny_world):
        shas = tiny_world.all_shas()[:40]
        serial = TokenSequenceCache(tiny_world).sequences(shas)
        parallel = TokenSequenceCache(tiny_world).sequences(shas, workers=2)
        assert serial == parallel

    def test_persistence_round_trip(self, tiny_world, tmp_path):
        path = tmp_path / "tokens.pkl"
        shas = tiny_world.all_shas()[:15]
        cache = TokenSequenceCache(tiny_world, persist_path=path)
        seqs = cache.sequences(shas)
        cache.save()
        assert path.exists()

        reloaded = TokenSequenceCache(tiny_world, persist_path=path)
        assert len(reloaded) == len(set(shas))
        assert reloaded.obs.count("token_sequences_loaded") == len(set(shas))
        assert reloaded.sequences(shas) == seqs
        assert reloaded.obs.count("token_cache_misses") == 0

    def test_save_without_path_raises(self, tiny_world):
        with pytest.raises(ValueError):
            TokenSequenceCache(tiny_world).save()

    def test_corrupt_file_is_cold_cache(self, tiny_world, tmp_path):
        path = tmp_path / "tokens.pkl"
        path.write_bytes(b"not a pickle")
        cache = TokenSequenceCache(tiny_world, persist_path=path)
        assert len(cache) == 0
        assert cache.sequence(tiny_world.all_shas()[0])

    def test_context_flag_mismatch_ignored(self, tiny_world, tmp_path):
        path = tmp_path / "tokens.pkl"
        cache = TokenSequenceCache(tiny_world, include_context=True, persist_path=path)
        cache.sequence(tiny_world.all_shas()[0])
        cache.save()
        other = TokenSequenceCache(tiny_world, include_context=False, persist_path=path)
        assert len(other) == 0  # context tokens differ; file must be ignored
