"""Property tests: the posting-list index is a pure optimization.

The contract of :class:`repro.core.index.PatchIndex` is that every query it
plans returns **exactly** the records the scan path
(:meth:`PatchQuery.apply <repro.core.query.PatchQuery.apply>`) would —
same elements, same order — and that :class:`RecordRenderCache` lines are
byte-identical to uncached serialization.  Hypothesis drives both over
random datasets and random queries, including empty results, offsets past
the end, and post-``extend`` mutations.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PatchDB, PatchIndex, PatchQuery, PatchRecord
from repro.obs import ObsRegistry
from repro.patch import parse_patch
from tests.conftest import LISTING_1, LISTING_2

_BASE_PATCHES = (parse_patch(LISTING_1), parse_patch(LISTING_2))

# Small pools so random datasets collide on every field (posting lists with
# more than one row, queries that hit and queries that miss).
_SHAS = [f"{i:040x}" for i in range(6)]
_REPOS = ["libredwg/libredwg", "systemd/systemd", "torvalds/linux", "curl/curl"]
_CVES = ["CVE-2019-20912", "CVE-2015-0001", "CVE-2021-33560"]


@st.composite
def record_lists(draw, min_size=0, max_size=24):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    records = []
    for _ in range(n):
        patch = replace(
            _BASE_PATCHES[draw(st.integers(0, 1))],
            sha=draw(st.sampled_from(_SHAS)),
            repo=draw(st.sampled_from(_REPOS)),
        )
        records.append(
            PatchRecord(
                patch,
                source=draw(st.sampled_from(["nvd", "wild", "synthetic"])),
                is_security=draw(st.booleans()),
                pattern_type=draw(st.one_of(st.none(), st.integers(0, 3))),
                cve_id=draw(st.one_of(st.none(), st.sampled_from(_CVES))),
            )
        )
    return records


#: Queries spanning every indexable field, values both present and absent
#: in the datasets above, and pagination reaching past the end.
queries = st.builds(
    PatchQuery,
    source=st.sampled_from([None, "nvd", "wild", "synthetic"]),
    is_security=st.sampled_from([None, True, False]),
    pattern_type=st.one_of(st.none(), st.integers(0, 5)),
    repo=st.one_of(st.none(), st.sampled_from(_REPOS + ["no/such-repo"])),
    sha=st.one_of(st.none(), st.sampled_from(_SHAS + ["f" * 40])),
    cve_id=st.one_of(st.none(), st.sampled_from(_CVES + ["CVE-0000-0000"])),
    limit=st.one_of(st.none(), st.integers(0, 30)),
    offset=st.integers(0, 30),
)


def _scan(records, query):
    return list(query.apply(records))


class TestIndexEquivalence:
    @given(records=record_lists(), query=queries)
    @settings(max_examples=150, deadline=None)
    def test_records_match_scan_elementwise_and_in_order(self, records, query):
        db = PatchDB(records)
        assert db.records(query) == _scan(records, query)

    @given(records=record_lists(), query=queries)
    @settings(max_examples=150, deadline=None)
    def test_count_matches_scan(self, records, query):
        db = PatchDB(records)
        assert db.count(query) == sum(1 for r in records if query.matches(r))

    @given(records=record_lists(min_size=2), query=queries)
    @settings(max_examples=100, deadline=None)
    def test_extend_keeps_index_in_sync(self, records, query):
        cut = len(records) // 2
        db = PatchDB(records[:cut])
        db.extend(records[cut:])
        assert db.records(query) == _scan(records, query)
        assert db.count(query) == sum(1 for r in records if query.matches(r))

    @given(records=record_lists(), query=queries)
    @settings(max_examples=50, deadline=None)
    def test_pickle_round_trip_preserves_query_results(self, records, query):
        db = pickle.loads(pickle.dumps(PatchDB(records)))
        assert db.records(query) == _scan(records, query)

    def test_offset_past_end_is_empty(self):
        records = _fixed_records()
        db = PatchDB(records)
        query = PatchQuery(source="nvd", offset=1000)
        assert db.records(query) == []
        assert db.count(query) == sum(1 for r in records if r.source == "nvd")

    def test_no_match_is_empty(self):
        db = PatchDB(_fixed_records())
        assert db.records(PatchQuery(sha="f" * 40)) == []
        assert db.count(PatchQuery(sha="f" * 40)) == 0


def _fixed_records():
    sec = parse_patch(LISTING_1, repo="libredwg/libredwg")
    non = parse_patch(LISTING_2, repo="systemd/systemd")
    return [
        PatchRecord(sec, "nvd", True, pattern_type=1, cve_id="CVE-2019-20912"),
        PatchRecord(non, "wild", False),
        PatchRecord(sec, "wild", True, pattern_type=3),
        PatchRecord(sec, "synthetic", True, pattern_type=1),
        PatchRecord(non, "synthetic", False),
    ]


class TestPlanner:
    def test_point_lookups_served_by_index(self):
        records = _fixed_records()
        index = PatchIndex(records)
        ids = index.lookup(PatchQuery(sha=records[0].patch.sha, source="nvd"))
        assert ids is not None
        assert [int(i) for i in ids] == [0]

    def test_no_predicates_returns_all_rows(self):
        index = PatchIndex(_fixed_records())
        ids = index.lookup(PatchQuery(limit=2, offset=1))
        assert [int(i) for i in ids] == [0, 1, 2, 3, 4]  # caller slices

    def test_unindexable_predicate_returns_none(self):
        index = PatchIndex(_fixed_records())
        del index._postings["repo"]  # simulate a field this index predates
        assert index.lookup(PatchQuery(repo="systemd/systemd")) is None

    def test_fallback_scan_still_correct_and_counted(self):
        records = _fixed_records()
        obs = ObsRegistry()
        db = PatchDB(records, obs=obs)
        del db._index._postings["repo"]
        query = PatchQuery(repo="systemd/systemd")
        assert db.records(query) == [r for r in records if r.patch.repo == "systemd/systemd"]
        assert db.count(query) == 2
        assert obs.count("index.fallback") == 2
        assert obs.count("index.hit") == 0

    def test_hits_counted(self):
        obs = ObsRegistry()
        db = PatchDB(_fixed_records(), obs=obs)
        db.records(PatchQuery(source="wild"))  # planned
        db.records(PatchQuery(limit=2))  # pure pagination
        db.count(PatchQuery(source="wild"))
        assert obs.count("index.hit") == 3
        assert obs.count("index.fallback") == 0


class TestRenderCache:
    def test_cached_jsonl_is_byte_identical_to_uncached(self, tmp_path):
        records = _fixed_records()
        db = PatchDB(records)
        cold = tmp_path / "cold.jsonl"
        PatchDB.write_jsonl(records, cold)  # no cache: PatchRecord.to_json
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        db.save_jsonl(first)  # fills the render cache
        db.save_jsonl(second)  # served entirely from it
        assert first.read_bytes() == cold.read_bytes()
        assert second.read_bytes() == cold.read_bytes()

    def test_hit_miss_counters(self, tmp_path):
        obs = ObsRegistry()
        db = PatchDB(_fixed_records(), obs=obs)
        db.save_jsonl(tmp_path / "a.jsonl")
        assert obs.count("render_cache.miss") == 5
        assert obs.count("render_cache.hit") == 0
        db.save_jsonl(tmp_path / "b.jsonl")
        assert obs.count("render_cache.miss") == 5
        assert obs.count("render_cache.hit") == 5

    def test_mbox_memoized_and_shared_with_json_line(self):
        obs = ObsRegistry()
        db = PatchDB(_fixed_records(), obs=obs)
        record = db.records(PatchQuery(limit=1))[0]
        text = db.record_mbox(record)  # miss: renders
        line = db.record_json(record)  # miss for the line, reuses the mbox
        assert json.loads(line)["patch_text"] == text
        assert db.record_mbox(record) is text  # hit: pointer read
        assert obs.count("render_cache.miss") == 2

    def test_pickle_drops_entries_but_stays_correct(self, tmp_path):
        db = PatchDB(_fixed_records())
        db.save_jsonl(tmp_path / "warm.jsonl")
        clone = pickle.loads(pickle.dumps(db))
        clone.save_jsonl(tmp_path / "cold.jsonl")
        assert (tmp_path / "warm.jsonl").read_bytes() == (tmp_path / "cold.jsonl").read_bytes()
