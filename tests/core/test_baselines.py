"""Tests for the Table III baseline methods."""

import pytest

from repro.core import (
    PatchFeatureCache,
    VerificationOracle,
    brute_force_candidates,
    evaluate_candidates,
    nearest_link_candidates,
    pseudo_label_candidates,
    uncertainty_candidates,
)
from repro.errors import AugmentationError


@pytest.fixture(scope="module")
def setup(tiny_world):
    cache = PatchFeatureCache(tiny_world)
    seed_sec = tiny_world.nvd_shas()
    nonsec = [s for s in tiny_world.all_shas() if not tiny_world.label(s).is_security]
    seed_non = nonsec[: 2 * len(seed_sec)]
    pool = [s for s in tiny_world.wild_shas() if s not in set(seed_non)][:150]
    return cache, seed_sec, seed_non, pool


class TestBruteForce:
    def test_returns_whole_pool(self, setup):
        _, _, _, pool = setup
        assert brute_force_candidates(pool) == pool

    def test_copy_not_alias(self, setup):
        _, _, _, pool = setup
        out = brute_force_candidates(pool)
        assert out is not pool


class TestPseudoLabeling:
    def test_candidate_count_defaults_to_seed_size(self, setup):
        cache, seed_sec, seed_non, pool = setup
        out = pseudo_label_candidates(cache, seed_sec, seed_non, pool, seed=0)
        assert len(out) == len(seed_sec)

    def test_explicit_candidate_count(self, setup):
        cache, seed_sec, seed_non, pool = setup
        out = pseudo_label_candidates(cache, seed_sec, seed_non, pool, n_candidates=5, seed=0)
        assert len(out) == 5

    def test_candidates_from_pool(self, setup):
        cache, seed_sec, seed_non, pool = setup
        out = pseudo_label_candidates(cache, seed_sec, seed_non, pool, seed=0)
        assert set(out) <= set(pool)

    def test_needs_both_classes(self, setup):
        cache, seed_sec, _, pool = setup
        with pytest.raises(AugmentationError):
            pseudo_label_candidates(cache, seed_sec, [], pool)


class TestUncertainty:
    def test_unanimous_consensus_subset(self, setup):
        cache, seed_sec, seed_non, pool = setup
        out = uncertainty_candidates(cache, seed_sec, seed_non, pool, seed=0)
        assert set(out) <= set(pool)

    def test_custom_ensemble(self, setup):
        from repro.ml import GaussianNaiveBayes, LogisticRegression

        cache, seed_sec, seed_non, pool = setup
        out = uncertainty_candidates(
            cache, seed_sec, seed_non, pool,
            classifiers=[GaussianNaiveBayes(), LogisticRegression()],
        )
        assert set(out) <= set(pool)

    def test_needs_both_classes(self, setup):
        cache, seed_sec, _, pool = setup
        with pytest.raises(AugmentationError):
            uncertainty_candidates(cache, seed_sec, [], pool)


class TestNearestLinkCandidates:
    def test_one_candidate_per_seed(self, setup):
        cache, seed_sec, _, pool = setup
        out = nearest_link_candidates(cache, seed_sec, pool)
        assert len(out) == len(set(out)) == len(seed_sec)


class TestEvaluate:
    def test_full_verification_when_small(self, tiny_world, setup):
        _, _, _, pool = setup
        oracle = VerificationOracle(tiny_world, seed=0)
        result = evaluate_candidates("m", pool[:20], len(pool), oracle, sample_size=100)
        assert result.sampled == 20
        truth = sum(tiny_world.label(s).is_security for s in pool[:20])
        assert result.sampled_security == truth

    def test_sampling_caps_effort(self, tiny_world, setup):
        _, _, _, pool = setup
        oracle = VerificationOracle(tiny_world, seed=0)
        result = evaluate_candidates("m", pool, len(pool), oracle, sample_size=30)
        assert result.sampled == 30
        assert oracle.stats.candidates_reviewed == 30

    def test_empty_candidates(self, tiny_world, setup):
        _, _, _, pool = setup
        result = evaluate_candidates("m", [], len(pool), VerificationOracle(tiny_world))
        assert result.n_candidates == 0
        assert result.proportion == 0.0

    def test_row_renders(self, tiny_world, setup):
        _, _, _, pool = setup
        result = evaluate_candidates(
            "Nearest Link", pool[:10], len(pool), VerificationOracle(tiny_world, seed=1)
        )
        assert "Nearest Link" in result.row()
        assert "security=" in result.row()


class TestOrdering:
    def test_nearest_link_beats_brute_force(self, tiny_world, setup):
        """The paper's headline: targeted candidates out-yield the base rate."""
        cache, seed_sec, _, pool = setup
        nl = nearest_link_candidates(cache, seed_sec, pool)
        oracle = VerificationOracle(tiny_world, seed=2)
        nl_result = evaluate_candidates("nl", nl, len(pool), oracle, sample_size=500)
        bf_result = evaluate_candidates(
            "bf", pool, len(pool), VerificationOracle(tiny_world, seed=3), sample_size=500
        )
        assert nl_result.proportion > bf_result.proportion
