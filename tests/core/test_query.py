"""Tests for the unified PatchQuery filter/pagination surface."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import PatchDB, PatchQuery, PatchRecord, QueryError
from repro.patch import parse_patch


from tests.conftest import LISTING_1, LISTING_2


@pytest.fixture(scope="module")
def records():
    sec = parse_patch(LISTING_1, repo="libredwg/libredwg")
    non = parse_patch(LISTING_2, repo="systemd/systemd")
    return [
        PatchRecord(sec, "nvd", True, pattern_type=1, cve_id="CVE-2019-20912"),
        PatchRecord(non, "wild", False),
        PatchRecord(sec, "wild", True, pattern_type=3),
        PatchRecord(sec, "synthetic", True, pattern_type=1),
        PatchRecord(non, "synthetic", False),
    ]


class TestPredicates:
    def test_empty_query_matches_everything(self, records):
        query = PatchQuery()
        assert all(query.matches(r) for r in records)
        assert query.is_unfiltered

    def test_conjunction_of_fields(self, records):
        query = PatchQuery(source="wild", is_security=True)
        matched = [r for r in records if query.matches(r)]
        assert len(matched) == 1
        assert matched[0].pattern_type == 3

    def test_repo_filter(self, records):
        assert len(list(PatchQuery(repo="systemd/systemd").apply(records))) == 2

    def test_pattern_type_filter(self, records):
        assert len(list(PatchQuery(pattern_type=1).apply(records))) == 2

    def test_unknown_source_rejected(self):
        with pytest.raises(QueryError):
            PatchQuery(source="github")

    def test_sha_point_lookup(self, records):
        sha = records[0].patch.sha
        got = list(PatchQuery(sha=sha).apply(records))
        assert got and all(r.patch.sha == sha for r in got)

    def test_cve_id_filter(self, records):
        got = list(PatchQuery(cve_id="CVE-2019-20912").apply(records))
        assert [r.cve_id for r in got] == ["CVE-2019-20912"]

    @pytest.mark.parametrize("field", ["sha", "cve_id"])
    @pytest.mark.parametrize("bad", ["", " abc", "abc "])
    def test_blank_or_padded_sha_cve_rejected(self, field, bad):
        with pytest.raises(QueryError, match="non-blank"):
            PatchQuery(**{field: bad})

    def test_negative_pagination_rejected(self):
        with pytest.raises(QueryError):
            PatchQuery(limit=-1)
        with pytest.raises(QueryError):
            PatchQuery(offset=-1)


class TestPagination:
    def test_offset_and_limit_apply_after_filtering(self, records):
        security = [r for r in records if r.is_security]
        query = PatchQuery(is_security=True, offset=1, limit=1)
        assert list(query.apply(records)) == [security[1]]

    def test_limit_zero_yields_nothing(self, records):
        assert list(PatchQuery(limit=0).apply(records)) == []

    def test_apply_is_lazy_and_stops_at_limit(self, records):
        consumed = []

        def source():
            for r in records:
                consumed.append(r)
                yield r

        got = list(PatchQuery(limit=2).apply(source()))
        assert len(got) == 2
        assert len(consumed) == 2  # input not drained past the limit

    def test_page_keeps_filters(self, records):
        base = PatchQuery(is_security=True)
        paged = base.page(limit=2, offset=1)
        assert paged.is_security is True
        assert (paged.limit, paged.offset) == (2, 1)


class TestWireFormat:
    def test_to_dict_omits_unset_fields(self):
        assert PatchQuery().to_dict() == {}
        assert PatchQuery(source="nvd").to_dict() == {"source": "nvd"}

    def test_from_params_rejects_unknown_keys(self):
        with pytest.raises(QueryError, match="unknown query parameter"):
            PatchQuery.from_params({"sources": "nvd"})

    def test_from_params_rejects_bad_boolean(self):
        with pytest.raises(QueryError, match="boolean"):
            PatchQuery.from_params({"is_security": "maybe"})

    def test_from_params_rejects_bad_int(self):
        with pytest.raises(QueryError, match="integer"):
            PatchQuery.from_params({"limit": "many"})

    def test_blank_values_are_ignored(self):
        assert PatchQuery.from_params({"source": "", "limit": " "}) == PatchQuery()

    @pytest.mark.parametrize("raw,expected", [("1", True), ("TRUE", True), ("off", False)])
    def test_boolean_spellings(self, raw, expected):
        assert PatchQuery.from_params({"is_security": raw}).is_security is expected

    @given(
        source=st.sampled_from([None, "nvd", "wild", "synthetic"]),
        is_security=st.sampled_from([None, True, False]),
        pattern_type=st.one_of(st.none(), st.integers(min_value=0, max_value=11)),
        sha=st.one_of(st.none(), st.sampled_from(["a" * 40, "0123abcd"])),
        cve_id=st.one_of(st.none(), st.sampled_from(["CVE-2019-20912", "CVE-2021-1"])),
        limit=st.one_of(st.none(), st.integers(min_value=0, max_value=500)),
        offset=st.integers(min_value=0, max_value=500),
    )
    def test_query_string_round_trip(
        self, source, is_security, pattern_type, sha, cve_id, limit, offset
    ):
        query = PatchQuery(
            source=source,
            is_security=is_security,
            pattern_type=pattern_type,
            sha=sha,
            cve_id=cve_id,
            limit=limit,
            offset=offset,
        )
        # Encode the way a URL query string would: every value as text.
        params = {
            name: str(int(v)) if isinstance(v, bool) else str(v)
            for name, v in query.to_dict().items()
        }
        assert PatchQuery.from_params(params) == query

    @given(
        is_security=st.sampled_from([None, True, False]),
        limit=st.one_of(st.none(), st.integers(min_value=0, max_value=10)),
        offset=st.integers(min_value=0, max_value=10),
    )
    def test_apply_agrees_with_matches_plus_slicing(self, records, is_security, limit, offset):
        query = PatchQuery(is_security=is_security, limit=limit, offset=offset)
        filtered = [r for r in records if query.matches(r)]
        end = None if limit is None else offset + limit
        assert list(query.apply(records)) == filtered[offset:end]


class TestPatchDBIntegration:
    def test_records_accepts_query(self, records):
        db = PatchDB(records)
        assert len(db.records(PatchQuery(source="wild"))) == 2
        assert len(db.records(PatchQuery(is_security=True, limit=2))) == 2

    def test_query_jsonl_streams_filtered(self, records, tmp_path):
        path = tmp_path / "db.jsonl"
        PatchDB(records).save_jsonl(path)
        got = list(PatchDB.query_jsonl(path, PatchQuery(source="synthetic")))
        assert len(got) == 2
        assert all(r.source == "synthetic" for r in got)
