"""Tests for nearest link search (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import exact_assignment, link_distances, nearest_link_search
from repro.errors import AugmentationError


class TestBasics:
    def test_trivial_one_to_one(self):
        d = np.array([[1.0, 5.0], [5.0, 1.0]])
        result = nearest_link_search(d)
        assert result.links.tolist() == [0, 1]
        assert result.total_distance == 2.0

    def test_collision_resolved(self):
        # Both rows prefer column 0; the second must take its next best.
        d = np.array([[1.0, 10.0, 20.0], [2.0, 3.0, 20.0]])
        result = nearest_link_search(d)
        assert sorted(result.links.tolist()) == [0, 1]
        assert result.total_distance == 4.0

    def test_greedy_order_by_row_minimum(self):
        # Row 1 has the global minimum, so it claims col 0 first; row 0
        # falls back to col 1.
        d = np.array([[2.0, 3.0], [1.0, 9.0]])
        result = nearest_link_search(d)
        assert result.links.tolist() == [1, 0]
        assert result.total_distance == 4.0

    def test_single_row(self):
        d = np.array([[3.0, 1.0, 2.0]])
        result = nearest_link_search(d)
        assert result.links.tolist() == [1]

    def test_square_matrix_permutation(self):
        rng = np.random.default_rng(0)
        d = rng.uniform(size=(8, 8))
        result = nearest_link_search(d)
        assert sorted(result.links.tolist()) == list(range(8))

    def test_candidate_set_sorted_unique(self):
        d = np.random.default_rng(1).uniform(size=(5, 12))
        result = nearest_link_search(d)
        cs = result.candidate_set
        assert len(cs) == 5
        assert np.array_equal(cs, np.unique(cs))


class TestValidation:
    def test_more_rows_than_cols_raises(self):
        with pytest.raises(AugmentationError):
            nearest_link_search(np.ones((3, 2)))

    def test_empty_raises(self):
        with pytest.raises(AugmentationError):
            nearest_link_search(np.zeros((0, 5)))

    def test_one_d_raises(self):
        with pytest.raises(AugmentationError):
            nearest_link_search(np.ones(4))


class TestAgainstExact:
    def test_exact_is_optimal_reference(self):
        d = np.array([[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]])
        exact = exact_assignment(d)
        greedy = nearest_link_search(d)
        assert exact.total_distance <= greedy.total_distance

    @given(
        d=arrays(
            np.float64,
            st.tuples(st.integers(1, 6), st.integers(6, 10)),
            elements=st.floats(0, 100),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_greedy_never_beats_exact(self, d):
        greedy = nearest_link_search(d)
        exact = exact_assignment(d)
        assert greedy.total_distance >= exact.total_distance - 1e-9

    @given(
        d=arrays(
            np.float64,
            st.tuples(st.integers(1, 8), st.integers(8, 14)),
            elements=st.floats(0, 100),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_links_always_distinct(self, d):
        result = nearest_link_search(d)
        assert len(set(result.links.tolist())) == d.shape[0]

    @given(
        d=arrays(
            np.float64,
            st.tuples(st.integers(2, 5), st.integers(5, 9)),
            elements=st.floats(0, 50),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_total_matches_link_distances(self, d):
        result = nearest_link_search(d)
        assert result.total_distance == pytest.approx(link_distances(d, result).sum())


class TestKnnContrast:
    def test_knn_reuses_neighbors_nearest_link_does_not(self):
        """§III-B-3: KNN may assign one wild patch to many queries; the
        nearest link consumes each candidate at most once."""
        from repro.ml import KNeighborsClassifier

        # Three identical queries, one overwhelmingly attractive neighbor.
        wild = np.array([[0.0, 0.0], [10.0, 10.0], [11.0, 11.0], [12.0, 12.0]])
        queries = np.array([[0.1, 0.1], [0.2, 0.2], [0.3, 0.3]])
        knn = KNeighborsClassifier(k=1, standardize=False)
        knn.fit(wild, np.array([1, 0, 0, 1]))
        knn_choices = knn.kneighbors(queries).ravel()
        assert len(set(knn_choices.tolist())) == 1  # all reuse wild[0]

        d = np.linalg.norm(queries[:, None, :] - wild[None, :, :], axis=2)
        nl_choices = nearest_link_search(d).links
        assert len(set(nl_choices.tolist())) == 3  # all distinct
