"""Tests for the verification oracle and the augmentation loop."""

import numpy as np
import pytest

from repro.core import (
    DatasetAugmentation,
    PatchFeatureCache,
    SearchSet,
    VerificationOracle,
)
from repro.errors import AugmentationError


@pytest.fixture(scope="module")
def cache(tiny_world):
    return PatchFeatureCache(tiny_world)


class TestOracle:
    def test_perfect_oracle_matches_truth(self, tiny_world):
        oracle = VerificationOracle(tiny_world, seed=0)
        for sha in tiny_world.all_shas()[:50]:
            assert oracle.verify(sha) == tiny_world.label(sha).is_security

    def test_stats_accumulate(self, tiny_world):
        oracle = VerificationOracle(tiny_world, seed=0)
        shas = tiny_world.all_shas()[:30]
        verdicts = oracle.verify_many(shas)
        assert oracle.stats.candidates_reviewed == 30
        assert oracle.stats.labeled_security == int(verdicts.sum())
        assert oracle.stats.labeled_non_security == 30 - int(verdicts.sum())

    def test_noisy_oracle_flips_some(self, tiny_world):
        noisy = VerificationOracle(tiny_world, annotator_error_rate=0.45, seed=1)
        shas = tiny_world.all_shas()[:200]
        truth = np.array([tiny_world.label(s).is_security for s in shas])
        verdicts = noisy.verify_many(shas)
        assert np.any(verdicts != truth)
        assert noisy.stats.disagreements > 0

    def test_majority_vote_suppresses_small_noise(self, tiny_world):
        slightly_noisy = VerificationOracle(
            tiny_world, n_annotators=3, annotator_error_rate=0.05, seed=2
        )
        shas = tiny_world.all_shas()[:200]
        truth = np.array([tiny_world.label(s).is_security for s in shas])
        verdicts = slightly_noisy.verify_many(shas)
        # Majority of 3 at 5% flip rate -> < 1% expected decision errors.
        assert np.mean(verdicts != truth) < 0.05

    def test_even_panel_rejected(self, tiny_world):
        with pytest.raises(AugmentationError):
            VerificationOracle(tiny_world, n_annotators=2)

    def test_bad_error_rate_rejected(self, tiny_world):
        with pytest.raises(AugmentationError):
            VerificationOracle(tiny_world, annotator_error_rate=0.7)


class TestAugmentationRound:
    def test_round_partitions_candidates(self, tiny_world, cache):
        oracle = VerificationOracle(tiny_world, seed=3)
        aug = DatasetAugmentation(cache, oracle)
        seed_sec = tiny_world.nvd_shas()
        pool = tiny_world.wild_shas()[:150]
        verified, rejected = aug.run_round(seed_sec, pool)
        assert len(verified) + len(rejected) <= len(seed_sec)
        assert set(verified) <= set(pool)
        assert set(rejected) <= set(pool)
        assert not set(verified) & set(rejected)

    def test_verified_are_truly_security(self, tiny_world, cache):
        aug = DatasetAugmentation(cache, VerificationOracle(tiny_world, seed=4))
        verified, _ = aug.run_round(tiny_world.nvd_shas(), tiny_world.wild_shas()[:150])
        for sha in verified:
            assert tiny_world.label(sha).is_security

    def test_pool_smaller_than_seed_raises(self, tiny_world, cache):
        aug = DatasetAugmentation(cache, VerificationOracle(tiny_world, seed=5))
        seed_sec = tiny_world.security_shas()
        with pytest.raises(AugmentationError):
            aug.run_round(seed_sec, tiny_world.wild_shas()[: len(seed_sec) - 1])


class TestSchedule:
    def test_rounds_recorded(self, tiny_world, cache):
        aug = DatasetAugmentation(cache, VerificationOracle(tiny_world, seed=6))
        pool = tuple(tiny_world.wild_shas()[:200])
        outcome = aug.run_schedule(tiny_world.nvd_shas(), [SearchSet("Set I", pool, rounds=2)])
        assert len(outcome.rounds) == 2
        assert outcome.rounds[0].round_no == 1
        assert outcome.rounds[1].round_no == 2

    def test_security_set_grows_monotonically(self, tiny_world, cache):
        aug = DatasetAugmentation(cache, VerificationOracle(tiny_world, seed=7))
        seed_sec = tiny_world.nvd_shas()
        pool = tuple(tiny_world.wild_shas()[:200])
        outcome = aug.run_schedule(seed_sec, [SearchSet("Set I", pool, rounds=2)])
        assert len(outcome.security_shas) == len(seed_sec) + outcome.wild_security_count

    def test_candidates_not_reused_across_rounds(self, tiny_world, cache):
        aug = DatasetAugmentation(cache, VerificationOracle(tiny_world, seed=8))
        pool = tuple(tiny_world.wild_shas()[:200])
        outcome = aug.run_schedule(tiny_world.nvd_shas(), [SearchSet("Set I", pool, rounds=3)])
        reviewed = outcome.security_shas + outcome.non_security_shas
        wild_reviewed = [s for s in reviewed if s not in set(tiny_world.nvd_shas())]
        assert len(wild_reviewed) == len(set(wild_reviewed))

    def test_ratio_threshold_stops_early(self, tiny_world, cache):
        aug = DatasetAugmentation(
            cache, VerificationOracle(tiny_world, seed=9), ratio_threshold=1.0
        )
        pool = tuple(tiny_world.wild_shas()[:200])
        outcome = aug.run_schedule(tiny_world.nvd_shas(), [SearchSet("Set I", pool, rounds=5)])
        assert len(outcome.rounds) == 1  # no round can reach ratio >= 1.0 here

    def test_table_renders(self, tiny_world, cache):
        aug = DatasetAugmentation(cache, VerificationOracle(tiny_world, seed=10))
        pool = tuple(tiny_world.wild_shas()[:150])
        outcome = aug.run_schedule(tiny_world.nvd_shas(), [SearchSet("Set I", pool, rounds=1)])
        text = outcome.table()
        assert "Set I" in text
        assert "ratio=" in text

    def test_round_result_ratio(self):
        from repro.core import RoundResult

        r = RoundResult(1, "Set I", 100, 50, 10)
        assert r.ratio == pytest.approx(0.2)
        empty = RoundResult(1, "Set I", 100, 0, 0)
        assert empty.ratio == 0.0

    def test_bad_threshold_rejected(self, tiny_world, cache):
        with pytest.raises(AugmentationError):
            DatasetAugmentation(cache, VerificationOracle(tiny_world), ratio_threshold=2.0)

    def test_empty_search_set_rejected(self):
        with pytest.raises(AugmentationError):
            SearchSet("empty", (), rounds=1)
