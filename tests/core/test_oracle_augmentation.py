"""Tests for the verification oracle and the augmentation loop."""

import numpy as np
import pytest

from repro.core import (
    DatasetAugmentation,
    PatchFeatureCache,
    SearchSet,
    VerificationOracle,
)
from repro.errors import AugmentationError


@pytest.fixture(scope="module")
def cache(tiny_world):
    return PatchFeatureCache(tiny_world)


class TestOracle:
    def test_perfect_oracle_matches_truth(self, tiny_world):
        oracle = VerificationOracle(tiny_world, seed=0)
        for sha in tiny_world.all_shas()[:50]:
            assert oracle.verify(sha) == tiny_world.label(sha).is_security

    def test_stats_accumulate(self, tiny_world):
        oracle = VerificationOracle(tiny_world, seed=0)
        shas = tiny_world.all_shas()[:30]
        verdicts = oracle.verify_many(shas)
        assert oracle.stats.candidates_reviewed == 30
        assert oracle.stats.labeled_security == int(verdicts.sum())
        assert oracle.stats.labeled_non_security == 30 - int(verdicts.sum())

    def test_noisy_oracle_flips_some(self, tiny_world):
        noisy = VerificationOracle(tiny_world, annotator_error_rate=0.45, seed=1)
        shas = tiny_world.all_shas()[:200]
        truth = np.array([tiny_world.label(s).is_security for s in shas])
        verdicts = noisy.verify_many(shas)
        assert np.any(verdicts != truth)
        assert noisy.stats.disagreements > 0

    def test_majority_vote_suppresses_small_noise(self, tiny_world):
        slightly_noisy = VerificationOracle(
            tiny_world, n_annotators=3, annotator_error_rate=0.05, seed=2
        )
        shas = tiny_world.all_shas()[:200]
        truth = np.array([tiny_world.label(s).is_security for s in shas])
        verdicts = slightly_noisy.verify_many(shas)
        # Majority of 3 at 5% flip rate -> < 1% expected decision errors.
        assert np.mean(verdicts != truth) < 0.05

    def test_even_panel_rejected(self, tiny_world):
        with pytest.raises(AugmentationError):
            VerificationOracle(tiny_world, n_annotators=2)

    def test_bad_error_rate_rejected(self, tiny_world):
        with pytest.raises(AugmentationError):
            VerificationOracle(tiny_world, annotator_error_rate=0.7)


class TestAugmentationRound:
    def test_round_partitions_candidates(self, tiny_world, cache):
        oracle = VerificationOracle(tiny_world, seed=3)
        aug = DatasetAugmentation(cache, oracle)
        seed_sec = tiny_world.nvd_shas()
        pool = tiny_world.wild_shas()[:150]
        verified, rejected = aug.run_round(seed_sec, pool)
        assert len(verified) + len(rejected) <= len(seed_sec)
        assert set(verified) <= set(pool)
        assert set(rejected) <= set(pool)
        assert not set(verified) & set(rejected)

    def test_verified_are_truly_security(self, tiny_world, cache):
        aug = DatasetAugmentation(cache, VerificationOracle(tiny_world, seed=4))
        verified, _ = aug.run_round(tiny_world.nvd_shas(), tiny_world.wild_shas()[:150])
        for sha in verified:
            assert tiny_world.label(sha).is_security

    def test_pool_smaller_than_seed_raises(self, tiny_world, cache):
        aug = DatasetAugmentation(cache, VerificationOracle(tiny_world, seed=5))
        seed_sec = tiny_world.security_shas()
        with pytest.raises(AugmentationError):
            aug.run_round(seed_sec, tiny_world.wild_shas()[: len(seed_sec) - 1])


class TestSchedule:
    def test_rounds_recorded(self, tiny_world, cache):
        aug = DatasetAugmentation(cache, VerificationOracle(tiny_world, seed=6))
        pool = tuple(tiny_world.wild_shas()[:200])
        outcome = aug.run_schedule(tiny_world.nvd_shas(), [SearchSet("Set I", pool, rounds=2)])
        assert len(outcome.rounds) == 2
        assert outcome.rounds[0].round_no == 1
        assert outcome.rounds[1].round_no == 2

    def test_security_set_grows_monotonically(self, tiny_world, cache):
        aug = DatasetAugmentation(cache, VerificationOracle(tiny_world, seed=7))
        seed_sec = tiny_world.nvd_shas()
        pool = tuple(tiny_world.wild_shas()[:200])
        outcome = aug.run_schedule(seed_sec, [SearchSet("Set I", pool, rounds=2)])
        assert len(outcome.security_shas) == len(seed_sec) + outcome.wild_security_count

    def test_candidates_not_reused_across_rounds(self, tiny_world, cache):
        aug = DatasetAugmentation(cache, VerificationOracle(tiny_world, seed=8))
        pool = tuple(tiny_world.wild_shas()[:200])
        outcome = aug.run_schedule(tiny_world.nvd_shas(), [SearchSet("Set I", pool, rounds=3)])
        reviewed = outcome.security_shas + outcome.non_security_shas
        wild_reviewed = [s for s in reviewed if s not in set(tiny_world.nvd_shas())]
        assert len(wild_reviewed) == len(set(wild_reviewed))

    def test_ratio_threshold_stops_early(self, tiny_world, cache):
        aug = DatasetAugmentation(
            cache, VerificationOracle(tiny_world, seed=9), ratio_threshold=1.0
        )
        pool = tuple(tiny_world.wild_shas()[:200])
        outcome = aug.run_schedule(tiny_world.nvd_shas(), [SearchSet("Set I", pool, rounds=5)])
        assert len(outcome.rounds) == 1  # no round can reach ratio >= 1.0 here

    def test_table_renders(self, tiny_world, cache):
        aug = DatasetAugmentation(cache, VerificationOracle(tiny_world, seed=10))
        pool = tuple(tiny_world.wild_shas()[:150])
        outcome = aug.run_schedule(tiny_world.nvd_shas(), [SearchSet("Set I", pool, rounds=1)])
        text = outcome.table()
        assert "Set I" in text
        assert "ratio=" in text

    def test_round_result_ratio(self):
        from repro.core import RoundResult

        r = RoundResult(1, "Set I", 100, 50, 10)
        assert r.ratio == pytest.approx(0.2)
        empty = RoundResult(1, "Set I", 100, 0, 0)
        assert empty.ratio == 0.0

    def test_bad_threshold_rejected(self, tiny_world, cache):
        with pytest.raises(AugmentationError):
            DatasetAugmentation(cache, VerificationOracle(tiny_world), ratio_threshold=2.0)

    def test_empty_search_set_rejected(self):
        with pytest.raises(AugmentationError):
            SearchSet("empty", (), rounds=1)


class TestIncrementalSchedule:
    """incremental=True must be a pure optimization over the full rebuild."""

    def _outcomes(self, tiny_world, cache, sets, oracle_seed):
        results = []
        for incremental in (True, False):
            aug = DatasetAugmentation(
                cache,
                VerificationOracle(tiny_world, seed=oracle_seed),
                incremental=incremental,
            )
            results.append(aug.run_schedule(tiny_world.nvd_shas(), sets))
        return results

    @pytest.mark.parametrize("oracle_seed", [0, 1, 2, 3])
    def test_matches_full_rebuild_round_by_round(self, tiny_world, cache, oracle_seed):
        pool = tuple(tiny_world.wild_shas()[:200])
        sets = [SearchSet("Set I", pool, rounds=4)]
        inc, full = self._outcomes(tiny_world, cache, sets, oracle_seed)
        assert inc.rounds == full.rounds
        assert inc.security_shas == full.security_shas
        assert inc.non_security_shas == full.non_security_shas

    def test_matches_full_rebuild_across_sets(self, tiny_world, cache):
        wild = tiny_world.wild_shas()
        sets = [
            SearchSet("Set I", tuple(wild[:150]), rounds=2),
            SearchSet("Set II", tuple(wild[150:350]), rounds=2),
        ]
        inc, full = self._outcomes(tiny_world, cache, sets, oracle_seed=5)
        assert inc.rounds == full.rounds
        assert inc.security_shas == full.security_shas

    def test_ratio_threshold_parity(self, tiny_world, cache):
        pool = tuple(tiny_world.wild_shas()[:200])
        sets = [SearchSet("Set I", pool, rounds=5)]
        outcomes = []
        for incremental in (True, False):
            aug = DatasetAugmentation(
                cache,
                VerificationOracle(tiny_world, seed=6),
                ratio_threshold=0.5,
                incremental=incremental,
            )
            outcomes.append(aug.run_schedule(tiny_world.nvd_shas(), sets))
        assert outcomes[0].rounds == outcomes[1].rounds

    def test_counts_cells_reused(self, tiny_world, cache):
        from repro.obs import ObsRegistry

        obs = ObsRegistry()
        aug = DatasetAugmentation(
            cache, VerificationOracle(tiny_world, seed=7), incremental=True, obs=obs
        )
        pool = tuple(tiny_world.wild_shas()[:200])
        aug.run_schedule(tiny_world.nvd_shas(), [SearchSet("Set I", pool, rounds=3)])
        assert obs.count("distance_full_recomputes") >= 1
        total = obs.count("distance_incremental_updates") + obs.count(
            "distance_full_recomputes"
        )
        assert total == 3  # one distance build per round, however it happened
        assert obs.seconds("search") > 0.0
        assert obs.seconds("verify") > 0.0


class TestEmptySideErrors:
    def test_empty_security_side_reports_counts(self, tiny_world, cache):
        aug = DatasetAugmentation(cache, VerificationOracle(tiny_world))
        pool = tiny_world.wild_shas()[:10]
        with pytest.raises(AugmentationError) as err:
            aug.run_round([], pool)
        assert "0 security shas" in str(err.value)
        assert "10 pool shas" in str(err.value)

    def test_empty_pool_side_reports_counts(self, tiny_world, cache):
        aug = DatasetAugmentation(cache, VerificationOracle(tiny_world))
        seed = tiny_world.nvd_shas()[:4]
        with pytest.raises(AugmentationError) as err:
            aug.run_round(seed, [])
        assert "4 security shas" in str(err.value)
        assert "0 pool shas" in str(err.value)

    def test_schedule_with_empty_seed_raises_augmentation_error(self, tiny_world, cache):
        aug = DatasetAugmentation(cache, VerificationOracle(tiny_world))
        pool = tuple(tiny_world.wild_shas()[:20])
        with pytest.raises(AugmentationError):
            aug.run_schedule([], [SearchSet("Set I", pool, rounds=1)])
