"""Tests for the PatchDB container and persistence."""

import pytest

from repro.core import PatchDB, PatchQuery, PatchRecord
from repro.errors import ReproError
from repro.patch import parse_patch


@pytest.fixture()
def records(listing_1, listing_2):
    sec = parse_patch(listing_1, repo="libredwg/libredwg")
    non = parse_patch(listing_2, repo="systemd/systemd")
    return [
        PatchRecord(sec, "nvd", True, pattern_type=1, cve_id="CVE-2019-20912"),
        PatchRecord(non, "wild", False),
        PatchRecord(sec, "wild", True, pattern_type=3),
        PatchRecord(sec, "synthetic", True, pattern_type=1),
        PatchRecord(non, "synthetic", False),
    ]


class TestRecord:
    def test_bad_source_rejected(self, listing_1):
        with pytest.raises(ReproError):
            PatchRecord(parse_patch(listing_1), "github", True)

    def test_json_round_trip(self, records):
        for rec in records:
            back = PatchRecord.from_json(rec.to_json())
            assert back.patch.sha == rec.patch.sha
            assert back.patch.files == rec.patch.files
            assert back.source == rec.source
            assert back.is_security == rec.is_security
            assert back.pattern_type == rec.pattern_type
            assert back.cve_id == rec.cve_id


class TestContainer:
    def test_len_and_iter(self, records):
        db = PatchDB(records)
        assert len(db) == 5
        assert len(list(db)) == 5

    def test_add_and_extend(self, records):
        db = PatchDB()
        db.add(records[0])
        db.extend(records[1:])
        assert len(db) == 5

    def test_filter_by_source(self, records):
        db = PatchDB(records)
        assert len(db.records(PatchQuery(source="nvd"))) == 1
        assert len(db.records(PatchQuery(source="wild"))) == 2
        assert len(db.records(PatchQuery(source="synthetic"))) == 2

    def test_filter_by_label(self, records):
        db = PatchDB(records)
        assert len(db.records(PatchQuery(is_security=True))) == 3
        assert len(db.records(PatchQuery(source="wild", is_security=False))) == 1

    def test_patches_view(self, records):
        db = PatchDB(records)
        assert all(hasattr(p, "sha") for p in db.patches())


class TestLegacyShim:
    """The pre-PatchQuery call shapes still work, with a DeprecationWarning."""

    def test_positional_source_warns_and_filters(self, records):
        db = PatchDB(records)
        with pytest.warns(DeprecationWarning):
            got = db.records("wild")
        assert got == db.records(PatchQuery(source="wild"))

    def test_keyword_pair_warns_and_filters(self, records):
        db = PatchDB(records)
        with pytest.warns(DeprecationWarning):
            got = db.records(source="wild", is_security=True)
        assert got == db.records(PatchQuery(source="wild", is_security=True))

    def test_patches_shim_warns(self, records):
        db = PatchDB(records)
        with pytest.warns(DeprecationWarning):
            got = db.patches(source="nvd")
        assert len(got) == 1

    def test_mixing_query_and_legacy_args_rejected(self, records):
        db = PatchDB(records)
        with pytest.raises(ReproError):
            db.records(PatchQuery(source="nvd"), is_security=True)

    def test_summary(self, records):
        summary = PatchDB(records).summary()
        assert summary["total"] == 5
        assert summary["security"] == 3
        assert summary["nvd_security"] == 1
        assert summary["wild_security"] == 1
        assert summary["synthetic_security"] == 1
        assert summary["synthetic_non_security"] == 1


class TestPersistence:
    def test_jsonl_round_trip(self, records, tmp_path):
        db = PatchDB(records)
        path = tmp_path / "patchdb.jsonl"
        db.save_jsonl(path)
        loaded = PatchDB.load_jsonl(path)
        assert len(loaded) == len(db)
        assert loaded.summary() == db.summary()
        for a, b in zip(db, loaded):
            assert a.patch.sha == b.patch.sha
            assert a.patch.files == b.patch.files

    def test_jsonl_is_line_oriented(self, records, tmp_path):
        path = tmp_path / "patchdb.jsonl"
        PatchDB(records).save_jsonl(path)
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 5

    def test_empty_db_round_trip(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        PatchDB().save_jsonl(path)
        assert len(PatchDB.load_jsonl(path)) == 0


class TestStreaming:
    def test_iter_jsonl_is_lazy(self, records, tmp_path):
        path = tmp_path / "patchdb.jsonl"
        PatchDB(records).save_jsonl(path)
        it = PatchDB.iter_jsonl(path)
        first = next(it)
        assert first.patch.sha == records[0].patch.sha
        assert len(list(it)) == len(records) - 1

    def test_write_jsonl_accepts_a_generator(self, records, tmp_path):
        path = tmp_path / "gen.jsonl"
        n = PatchDB.write_jsonl((r for r in records), path)
        assert n == len(records)
        back = PatchDB.load_jsonl(path)
        assert len(back) == len(records)
        assert [r.patch.sha for r in back] == [r.patch.sha for r in records]

    def test_streaming_round_trip_preserves_fields(self, records, tmp_path):
        path = tmp_path / "rt.jsonl"
        PatchDB.write_jsonl(iter(records), path)
        for orig, back in zip(records, PatchDB.iter_jsonl(path)):
            assert back.source == orig.source
            assert back.is_security == orig.is_security
            assert back.pattern_type == orig.pattern_type

    def test_iter_jsonl_skips_blank_lines(self, records, tmp_path):
        path = tmp_path / "blank.jsonl"
        PatchDB(records).save_jsonl(path)
        path.write_text(path.read_text().replace("\n", "\n\n", 2))
        assert len(list(PatchDB.iter_jsonl(path))) == len(records)
