"""Tests for the Table V rule-based categorizer."""

import pytest

from repro.core import categorize_many, categorize_patch
from repro.patch import parse_patch


def make_patch(removed, added, context=("int f(void) {", "}")):
    """Build a one-hunk patch from removed/added line lists."""
    body = [f" {context[0]}"]
    body.extend(f"-{l}" for l in removed)
    body.extend(f"+{l}" for l in added)
    body.append(f" {context[1]}")
    old_count = len(removed) + 2
    new_count = len(added) + 2
    text = "\n".join(
        [
            "commit " + "d" * 40,
            "Author: T <t@t>",
            "Date:   now",
            "",
            "    test patch",
            "",
            "diff --git a/a.c b/a.c",
            "--- a/a.c",
            "+++ b/a.c",
            f"@@ -1,{old_count} +1,{new_count} @@",
        ]
        + body
    )
    return parse_patch(text)


class TestCheckTypes:
    def test_bound_check_is_type_1(self):
        p = make_patch([], ["    if (idx >= size)", "        return -1;"])
        assert categorize_patch(p) == 1

    def test_sizeof_bound_is_type_1(self):
        p = make_patch([], ["    if (n > sizeof(buf))", "        return;"])
        assert categorize_patch(p) == 1

    def test_null_check_is_type_2(self):
        p = make_patch([], ["    if (ptr == NULL)", "        return -1;"])
        assert categorize_patch(p) == 2

    def test_negation_check_is_type_2(self):
        p = make_patch([], ["    if (!buf)", "        return;"])
        assert categorize_patch(p) == 2

    def test_flag_check_is_type_3(self):
        p = make_patch([], ["    if (state & 0x4)", "        return -22;"])
        assert categorize_patch(p) == 3

    def test_changed_condition_classified_by_new(self):
        p = make_patch(
            ["    if (byte & 0x40)"],
            ["    if (byte & 0x40 && i > 0)"],
        )
        assert categorize_patch(p) in (1, 3)


class TestDeclAndValueTypes:
    def test_type_change_is_type_4(self):
        p = make_patch(["    int len = 0;"], ["    unsigned int len = 0;"])
        assert categorize_patch(p) == 4

    def test_value_change_is_type_5(self):
        p = make_patch(["    x = 17;"], ["    x = 0;"])
        assert categorize_patch(p) == 5

    def test_added_memset_is_type_5(self):
        p = make_patch([], ["    memset(&info, 0, sizeof(info));"])
        assert categorize_patch(p) == 5


class TestSignatureTypes:
    def test_return_type_change_is_type_6(self):
        p = make_patch(
            ["int parse_header(char *buf)", "{"],
            ["long parse_header(char *buf)", "{"],
            context=("", ""),
        )
        assert categorize_patch(p) == 6

    def test_parameter_change_is_type_7(self):
        p = make_patch(
            ["int parse_header(char *buf)", "{"],
            ["int parse_header(char *buf, size_t len)", "{"],
            context=("", ""),
        )
        assert categorize_patch(p) == 7


class TestCallAndJumpTypes:
    def test_added_call_is_type_8(self):
        p = make_patch([], ["    mutex_lock(&dev_lock);"])
        assert categorize_patch(p) == 8

    def test_replaced_call_is_type_8(self):
        p = make_patch(["    strcpy(dst, src);"], ["    strlcpy(dst, src, len);"])
        assert categorize_patch(p) == 8

    def test_added_goto_is_type_9(self):
        p = make_patch(["    return -1;"], ["    goto fail;"])
        assert categorize_patch(p) == 9


class TestStructuralTypes:
    def test_pure_move_is_type_10(self):
        p = make_patch(
            ["    prepare();", "    x = compute();"],
            ["    x = compute();", "    prepare();"],
        )
        assert categorize_patch(p) == 10

    def test_large_rewrite_is_type_11(self):
        removed = [f"    old_stmt_{i}();" for i in range(8)]
        added = [f"    new_stmt_{i}(a, b);" for i in range(10)]
        p = make_patch(removed, added)
        assert categorize_patch(p) == 11

    def test_tiny_operator_tweak_is_type_12(self):
        p = make_patch(["    mask << shift;"], ["    mask >> shift;"])
        # No call/jump/check/decl/value signals -> fallback bucket.
        assert categorize_patch(p) == 12


class TestBulk:
    def test_categorize_many(self, tiny_world):
        shas = tiny_world.security_shas()[:20]
        types = categorize_many([tiny_world.patch_for(s) for s in shas])
        assert len(types) == 20
        assert all(1 <= t <= 12 for t in types)

    def test_agreement_with_ground_truth(self, tiny_world):
        """The categorizer should agree with corpus ground truth well above
        chance (1/12 ≈ 8%) — it encodes the same taxonomy."""
        shas = tiny_world.security_shas()
        hits = sum(
            categorize_patch(tiny_world.patch_for(s)) == tiny_world.label(s).pattern_type
            for s in shas
        )
        assert hits / len(shas) >= 0.4

    def test_paper_listing_1_is_a_check(self, listing_1):
        assert categorize_patch(parse_patch(listing_1)) in (1, 3)
