"""Known-answer recall tests: every checker catches its seeded violation."""

import pytest

from repro.errors import StaticCheckError
from repro.staticcheck import (
    CHECKER_IDS,
    SEEDABLE_CHECKERS,
    Severity,
    analyze_source,
    inject_violation,
    seed_all,
)

HOST = """\
int host(int v, int lo) {
    if (v < lo) {
        return lo;
    }
    return v;
}
"""


class TestSeededRecall:
    @pytest.mark.parametrize("checker_id", CHECKER_IDS)
    def test_every_checker_catches_its_seed(self, checker_id):
        # 100% recall: one seeded violation per checker class, each caught.
        text = seed_all(HOST)[checker_id]
        report = analyze_source("seed.c", text)
        assert checker_id in {f.checker for f in report.findings}

    @pytest.mark.parametrize("checker_id", SEEDABLE_CHECKERS)
    def test_seeds_do_not_cross_fire(self, checker_id):
        # Each payload trips exactly its own checker — the host is clean.
        text = inject_violation(HOST, checker_id)
        report = analyze_source("seed.c", text)
        assert {f.checker for f in report.findings} == {checker_id}

    def test_host_is_clean(self):
        assert analyze_source("host.c", HOST).findings == ()


class TestSeedingApi:
    def test_unknown_checker_rejected(self):
        with pytest.raises(StaticCheckError, match="payload"):
            inject_violation(HOST, "parse-coverage")

    def test_source_without_function_rejected(self):
        with pytest.raises(StaticCheckError, match="no function"):
            inject_violation("int x = 3;\n", "dangerous-api")

    def test_seed_all_covers_all_checkers(self):
        assert set(seed_all(HOST)) == set(CHECKER_IDS)

    def test_gate_seeds_are_gate_class(self):
        for checker_id in ("side-effect-cond", "scaffold-leak"):
            text = inject_violation(HOST, checker_id)
            report = analyze_source("seed.c", text)
            assert any(
                f.checker == checker_id and f.severity is Severity.GATE
                for f in report.findings
            )
