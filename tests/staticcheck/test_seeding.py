"""Known-answer recall tests: every checker catches its seeded violation."""

import pytest

from repro.errors import StaticCheckError
from repro.staticcheck import (
    CHECKER_IDS,
    DATAFLOW_FP_CHECKERS,
    FP_OPAQUE_FIXTURE,
    SEEDABLE_CHECKERS,
    Severity,
    analyze_source,
    inject_false_positive,
    inject_violation,
    make_checkers,
    plant_violation,
    score_fixtures,
    seed_all,
    seed_false_positives,
)

HOST = """\
int host(int v, int lo) {
    if (v < lo) {
        return lo;
    }
    return v;
}
"""


class TestSeededRecall:
    @pytest.mark.parametrize("checker_id", CHECKER_IDS)
    def test_every_checker_catches_its_seed(self, checker_id):
        # 100% recall: one seeded violation per checker class, each caught.
        text = seed_all(HOST)[checker_id]
        report = analyze_source("seed.c", text)
        assert checker_id in {f.checker for f in report.findings}

    @pytest.mark.parametrize("checker_id", SEEDABLE_CHECKERS)
    def test_seeds_do_not_cross_fire(self, checker_id):
        # Each payload trips exactly its own checker — the host is clean.
        text = inject_violation(HOST, checker_id)
        report = analyze_source("seed.c", text)
        assert {f.checker for f in report.findings} == {checker_id}

    def test_host_is_clean(self):
        assert analyze_source("host.c", HOST).findings == ()


class TestFalsePositiveFixtures:
    def test_lookalikes_cover_every_seedable_checker(self):
        assert set(seed_false_positives(HOST)) == set(SEEDABLE_CHECKERS) | {"parse-coverage"}

    @pytest.mark.parametrize("checker_id", DATAFLOW_FP_CHECKERS)
    def test_heuristic_mode_trips_on_the_lookalike(self, checker_id):
        # The lookalike is designed to fool the token/AST heuristic...
        text = inject_false_positive(HOST, checker_id)
        heuristic = analyze_source("fp.c", text, make_checkers(dataflow=False))
        assert checker_id in {f.checker for f in heuristic.findings}

    @pytest.mark.parametrize("checker_id", DATAFLOW_FP_CHECKERS)
    def test_dataflow_mode_vetoes_the_lookalike(self, checker_id):
        # ...and dataflow facts veto it.
        text = inject_false_positive(HOST, checker_id)
        dataflow = analyze_source("fp.c", text, make_checkers(dataflow=True))
        assert checker_id not in {f.checker for f in dataflow.findings}

    @pytest.mark.parametrize("checker_id", sorted(set(SEEDABLE_CHECKERS) - set(DATAFLOW_FP_CHECKERS)))
    def test_other_lookalikes_are_clean_in_both_modes(self, checker_id):
        text = inject_false_positive(HOST, checker_id)
        for dataflow in (False, True):
            report = analyze_source("fp.c", text, make_checkers(dataflow=dataflow))
            assert checker_id not in {f.checker for f in report.findings}

    def test_fp_opaque_fixture_stays_under_threshold(self):
        report = analyze_source("fp.c", FP_OPAQUE_FIXTURE)
        assert "parse-coverage" not in {f.checker for f in report.findings}


class TestScoreFixtures:
    def test_dataflow_strictly_improves_precision(self):
        # The acceptance pin: on the new FP fixtures, dataflow mode beats
        # the heuristic on precision for every upgraded checker, with
        # recall preserved at 1.0 in both modes.
        heuristic = score_fixtures(HOST, dataflow=False)
        dataflow = score_fixtures(HOST, dataflow=True)
        for checker_id in DATAFLOW_FP_CHECKERS:
            assert heuristic[checker_id]["precision"] == 0.5
            assert dataflow[checker_id]["precision"] == 1.0
        for scores in (heuristic, dataflow):
            for checker_id in SEEDABLE_CHECKERS:
                assert scores[checker_id]["recall"] == 1.0, checker_id

    def test_shape(self):
        scores = score_fixtures(HOST)
        assert set(scores) == set(SEEDABLE_CHECKERS)
        for sc in scores.values():
            assert set(sc) == {"tp", "fp", "fn", "precision", "recall"}


class TestPlantViolation:
    def test_reports_insertion_window(self):
        text, insert_at, added = plant_violation(HOST, "dangerous-api")
        assert text.splitlines()[insert_at:insert_at + added] != HOST.splitlines()[insert_at:insert_at + added]
        assert inject_violation(HOST, "dangerous-api") == text

    def test_unknown_checker_rejected(self):
        with pytest.raises(StaticCheckError, match="payload"):
            plant_violation(HOST, "parse-coverage")


class TestSeedingApi:
    def test_unknown_checker_rejected(self):
        with pytest.raises(StaticCheckError, match="payload"):
            inject_violation(HOST, "parse-coverage")

    def test_source_without_function_rejected(self):
        with pytest.raises(StaticCheckError, match="no function"):
            inject_violation("int x = 3;\n", "dangerous-api")

    def test_seed_all_covers_all_checkers(self):
        assert set(seed_all(HOST)) == set(CHECKER_IDS)

    def test_gate_seeds_are_gate_class(self):
        for checker_id in ("side-effect-cond", "scaffold-leak"):
            text = inject_violation(HOST, checker_id)
            report = analyze_source("seed.c", text)
            assert any(
                f.checker == checker_id and f.severity is Severity.GATE
                for f in report.findings
            )
