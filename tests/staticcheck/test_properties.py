"""Property-based tests: the linter must survive pathological input.

Non-strict robustness is the framework's core contract: whatever text the
corpus, a patch, or a user throws at it, ``analyze_source`` returns a
report — findings, never exceptions — and its coverage metrics stay
internally consistent.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import is_side_effect_free
from repro.staticcheck import analyze_source, lint_sources

code_text = st.text(
    alphabet="abcxyz_01 \n\t(){}[];,=+-*/<>!&|\"'#", min_size=0, max_size=400
)


class TestRobustness:
    @given(source=code_text)
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_text_never_raises(self, source):
        report = analyze_source("fuzz.c", source)
        assert report.code_lines >= 0

    @given(source=code_text)
    @settings(max_examples=100, deadline=None)
    def test_fragment_mode_never_raises(self, source):
        report = analyze_source("fuzz.c", source, is_fragment=True)
        # Fragments never produce gate-class parse findings.
        assert all(f.severity.value != "gate" or f.checker != "parse-coverage"
                   for f in report.findings)

    @given(source=code_text)
    @settings(max_examples=100, deadline=None)
    def test_opaque_lines_bounded_by_code_lines(self, source):
        report = analyze_source("fuzz.c", source)
        assert 0 <= report.opaque_lines <= report.code_lines
        assert 0.0 <= report.opaque_ratio <= 1.0

    @given(depth=st.integers(min_value=1, max_value=60))
    @settings(max_examples=20, deadline=None)
    def test_deep_nesting_never_raises(self, depth):
        body = "if (a) {\n" * depth + "a = 1;\n" + "}\n" * depth
        source = "void f(int a) {\n" + body + "}\n"
        report = analyze_source("deep.c", source)
        assert report.parse_failed is False or report.findings

    @given(n=st.integers(min_value=1, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_truncated_function_never_raises(self, n):
        full = "int f(int a) {\n    if (a > 0) {\n        return a;\n    }\n    return 0;\n}\n"
        analyze_source("trunc.c", full[:n])

    @given(source=code_text)
    @settings(max_examples=50, deadline=None)
    def test_opaque_attribute_region_appended(self, source):
        # Appending an opaque top-level region never *decreases* opaque
        # coverage accounting.
        base = analyze_source("f.c", source)
        extended = analyze_source(
            "f.c", source + "\n__attribute__((packed)) struct zz { int q; };\n"
        )
        assert extended.opaque_lines >= base.opaque_lines

    @given(sources=st.lists(code_text, min_size=0, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_lint_sources_never_raises(self, sources):
        items = [(f"f{i}.c", s) for i, s in enumerate(sources)]
        report = lint_sources(items)
        assert len(report.files) == len(items)


class TestSideEffectProperties:
    @given(text=st.text(alphabet="abc 0123<>=!&|()+-", min_size=0, max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_side_effect_scan_never_raises(self, text):
        is_side_effect_free(text)

    @given(ident=st.text(alphabet="abcxyz", min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_increment_always_detected(self, ident):
        assert not is_side_effect_free(f"{ident}++")
        assert not is_side_effect_free(f"--{ident}")
        assert is_side_effect_free(f"{ident} > 0")
