"""Tests for CFG-signature descaffolding of the Fig. 5 variants."""

import pytest

from repro.lang import IfStmt, parse_translation_unit, walk
from repro.staticcheck import cfg_equivalent, cfg_signature, descaffolded_signature
from repro.synthesis.variants import VARIANTS, apply_variant_text

SOURCE = """\
int check(int a, int b) {
    if (a > b) {
        return a;
    }
    while (b > 0) {
        b--;
    }
    return b;
}
"""

NEGATED = """\
int guard(char *p) {
    if (!p) {
        return -1;
    }
    return 0;
}
"""

COMPOUND = """\
int both(int a, int b) {
    if (a > 0 && b > 0) {
        return a + b;
    }
    return 0;
}
"""


def transform(source, variant, suffix="77"):
    unit = parse_translation_unit(source, "t.c")
    stmt = next(n for n in walk(unit) if isinstance(n, IfStmt))
    return apply_variant_text(
        source,
        variant,
        (stmt.cond_open_line, stmt.cond_open_col),
        (stmt.cond_close_line, stmt.cond_close_col),
        stmt.start_line,
        suffix,
    )


class TestAllVariantsEquivalent:
    @pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: f"v{v.variant_id}")
    def test_simple_condition(self, variant):
        assert cfg_equivalent(SOURCE, transform(SOURCE, variant))

    @pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: f"v{v.variant_id}")
    def test_negated_condition(self, variant):
        # '!p' makes variant 3's hoist declaration look like variant 4's.
        assert cfg_equivalent(NEGATED, transform(NEGATED, variant))

    @pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: f"v{v.variant_id}")
    def test_compound_condition(self, variant):
        assert cfg_equivalent(COMPOUND, transform(COMPOUND, variant))


class TestNonEquivalence:
    def test_changed_condition_fails(self):
        assert not cfg_equivalent(SOURCE, SOURCE.replace("a > b", "a >= b"))

    def test_leftover_scaffold_fails(self):
        broken = SOURCE.replace("a > b", "_SYS_VAL_9 && a > b")
        assert not cfg_equivalent(SOURCE, broken)

    def test_dropped_statement_fails(self):
        assert not cfg_equivalent(SOURCE, SOURCE.replace("        b--;\n", ""))

    def test_toggle_guard_mismatch_fails(self):
        # Variant 7 whose flag was set under a DIFFERENT condition than the
        # one re-tested must not descaffold.
        out = transform(SOURCE, VARIANTS[6])
        broken = out.replace("if (a > b) { _SYS_VAL", "if (a < b) { _SYS_VAL")
        assert not cfg_equivalent(SOURCE, broken)

    def test_unparseable_text_is_not_equivalent(self):
        assert not cfg_equivalent(SOURCE, "")


class TestSignatures:
    def test_signature_is_whitespace_insensitive(self):
        spaced = SOURCE.replace("a > b", "a  >  b")
        assert cfg_signature(SOURCE) == cfg_signature(spaced)

    def test_identity_descaffold(self):
        # A scaffold-free file descaffolds to its own signature.
        assert descaffolded_signature(SOURCE) == cfg_signature(SOURCE)

    def test_signature_captures_nesting(self):
        flat = "void f(int a) {\n    if (a) {\n        a = 1;\n    }\n    a = 2;\n}\n"
        nested = "void f(int a) {\n    if (a) {\n        a = 1;\n        a = 2;\n    }\n}\n"
        assert cfg_signature(flat) != cfg_signature(nested)
