"""Tests for the per-function CFG + reaching-definitions/liveness layer."""

import pytest

from repro.lang.parser import parse_translation_unit
from repro.staticcheck.dataflow import (
    FunctionFlow,
    build_cfg,
    declared_names,
    param_names,
)


def _flow(source: str) -> FunctionFlow:
    unit = parse_translation_unit(source, "df.c")
    assert unit.functions, "fixture must parse to at least one function"
    return FunctionFlow(unit.functions[0])


class TestCfg:
    def test_straight_line_is_a_chain(self):
        flow = _flow(
            "int f(void) {\n"
            "    int a = 1;\n"
            "    a = a + 1;\n"
            "    return a;\n"
            "}\n"
        )
        cfg = flow.cfg
        reachable = set(cfg.reachable())
        assert cfg.entry in reachable and cfg.exit in reachable
        # Every non-entry/exit atom of a straight-line body is reachable.
        assert all(i in reachable for i in range(len(cfg.atoms)))

    def test_code_after_return_is_unreachable(self):
        flow = _flow(
            "int f(void) {\n"
            "    return 1;\n"
            "    int dead = 2;\n"
            "}\n"
        )
        cfg = flow.cfg
        reachable = set(cfg.reachable())
        dead = [i for i, a in enumerate(cfg.atoms) if "dead" in a.text]
        assert dead and all(i not in reachable for i in dead)

    def test_if_creates_a_branch(self):
        flow = _flow(
            "int f(int x) {\n"
            "    if (x > 0) {\n"
            "        x = 1;\n"
            "    }\n"
            "    return x;\n"
            "}\n"
        )
        cond = [i for i, a in enumerate(flow.cfg.atoms) if a.kind == "cond"]
        assert cond and len(flow.cfg.succs[cond[0]]) == 2

    def test_build_cfg_matches_flow_cfg(self):
        src = "int f(int x) {\n    return x;\n}\n"
        unit = parse_translation_unit(src, "df.c")
        cfg = build_cfg(unit.functions[0])
        assert [a.kind for a in cfg.atoms] == [a.kind for a in _flow(src).cfg.atoms]


class TestReachingDefinitions:
    def test_const_definition_reaches_use(self):
        flow = _flow(
            "int f(void) {\n"
            "    int idx = 3;\n"
            "    return idx;\n"
            "}\n"
        )
        defs = flow.reaching_for(3, "idx")
        assert defs is not None
        assert {d.kind for d in defs} == {"const"}

    def test_reassignment_kills_the_first_definition(self):
        flow = _flow(
            "int f(int v) {\n"
            "    int x = 1;\n"
            "    x = v;\n"
            "    return x;\n"
            "}\n"
        )
        defs = flow.reaching_for(4, "x")
        assert defs is not None
        assert {d.kind for d in defs} == {"other"}

    def test_branch_merges_both_definitions(self):
        flow = _flow(
            "int f(int v) {\n"
            "    int x = 1;\n"
            "    if (v) {\n"
            "        x = v;\n"
            "    }\n"
            "    return x;\n"
            "}\n"
        )
        defs = flow.reaching_for(6, "x")
        assert defs is not None
        assert {d.kind for d in defs} == {"const", "other"}

    def test_parameter_definition_has_param_kind(self):
        flow = _flow("int f(int v) {\n    return v;\n}\n")
        defs = flow.reaching_for(2, "v")
        assert defs is not None
        assert {d.kind for d in defs} == {"param"}

    def test_allocator_call_has_alloc_kind(self):
        flow = _flow(
            "int f(void) {\n"
            "    char *p = malloc(8);\n"
            "    return p != 0;\n"
            "}\n"
        )
        defs = flow.reaching_for(3, "p")
        assert defs is not None
        assert {d.kind for d in defs} == {"alloc"}


class TestDeclaredBefore:
    def test_plain_order(self):
        flow = _flow(
            "int f(void) {\n"
            "    int a = 1;\n"
            "    return a;\n"
            "}\n"
        )
        assert flow.declared_before(3, "a")
        assert not flow.declared_before(2, "missing")

    def test_goto_reordered_declaration_reaches_use(self):
        # Line order says use-before-decl; control flow says otherwise.
        flow = _flow(
            "int f(void) {\n"
            "    int r = 0;\n"
            "    goto setup;\n"
            "use:\n"
            "    r = late + 1;\n"
            "    goto done;\n"
            "setup:\n"
            "    int late = 4;\n"
            "    goto use;\n"
            "done:\n"
            "    return r;\n"
            "}\n"
        )
        assert flow.declared_before(5, "late")


class TestDeadStores:
    def test_overwritten_store_is_dead(self):
        flow = _flow(
            "int f(int v) {\n"
            "    int x = 1;\n"
            "    x = v;\n"
            "    return x;\n"
            "}\n"
        )
        assert [(d.var, d.line) for d in flow.dead_stores()] == [("x", 2)]

    def test_used_store_is_live(self):
        flow = _flow(
            "int f(void) {\n"
            "    int x = 1;\n"
            "    return x;\n"
            "}\n"
        )
        assert flow.dead_stores() == []

    def test_address_taken_variable_is_exempt(self):
        flow = _flow(
            "int f(int v) {\n"
            "    int x = 1;\n"
            "    sink(&x);\n"
            "    x = v;\n"
            "    return 0;\n"
            "}\n"
        )
        assert all(d.var != "x" for d in flow.dead_stores())

    def test_unreachable_store_not_reported(self):
        flow = _flow(
            "int f(void) {\n"
            "    return 1;\n"
            "    int dead = 2;\n"
            "}\n"
        )
        assert flow.dead_stores() == []


class TestHelpers:
    @pytest.mark.parametrize(
        ("decl", "names"),
        [
            ("int a = 1;", ["a"]),
            ("char *p, *q;", ["p", "q"]),
            ("unsigned long total;", ["total"]),
        ],
    )
    def test_declared_names(self, decl, names):
        assert declared_names(decl) == names

    @pytest.mark.parametrize(
        ("params", "names"),
        [
            ("int a, char *b", ["a", "b"]),
            ("void", []),
            ("", []),
        ],
    )
    def test_param_names(self, params, names):
        assert param_names(params) == names
