"""Tests for lint_sources / lint_world / lint_patch and the process pool."""

from repro.obs import ObsRegistry
from repro.patch.gitformat import parse_patch
from repro.staticcheck import (
    analyze_source,
    lint_patch,
    lint_sources,
    lint_world,
    make_checkers,
    patch_fragments,
)

DIRTY = "void f(void) {\n    x = 1;\n    int x;\n}\n"
CLEAN = "int g(int a) {\n    if (a > 0) {\n        return a;\n    }\n    return 0;\n}\n"


class TestLintSources:
    def test_files_sorted_by_path(self):
        report = lint_sources([("z.c", CLEAN), ("a.c", CLEAN)])
        assert [fr.path for fr in report.files] == ["a.c", "z.c"]

    def test_counts_aggregate(self):
        report = lint_sources([("a.c", DIRTY), ("b.c", DIRTY)])
        assert report.counts_by_checker() == {"decl-use": 2}

    def test_obs_counters(self):
        obs = ObsRegistry()
        lint_sources([("a.c", DIRTY)], obs=obs)
        assert obs.count("files_linted") == 1
        assert obs.count("lint_findings") == 1
        assert obs.count("lint_decl_use") == 1
        assert obs.seconds("lint") > 0

    def test_empty_input(self):
        report = lint_sources([])
        assert report.files == []
        assert report.summary()["findings"] == 0

    def test_workers_identical_to_serial(self):
        items = [(f"f{i:02d}.c", DIRTY if i % 3 else CLEAN) for i in range(12)]
        serial = lint_sources(items)
        obs = ObsRegistry()
        parallel = lint_sources(items, workers=2, obs=obs)
        assert parallel.files == serial.files
        assert parallel.to_json() == serial.to_json()
        assert obs.seconds("lint_parallel") > 0

    def test_small_batch_stays_serial(self):
        obs = ObsRegistry()
        lint_sources([("a.c", CLEAN)], workers=4, obs=obs)
        assert obs.seconds("lint_parallel") == 0.0


class TestLintWorld:
    def test_clean_world_has_no_gate_findings(self, tiny_world):
        report = lint_world(tiny_world)
        assert report.gate_findings == []
        assert len(report.files) > 0

    def test_paths_are_slug_namespaced(self, tiny_world):
        report = lint_world(tiny_world)
        slugs = set(tiny_world.repos)
        assert all(any(fr.path.startswith(s + "/") for s in slugs) for fr in report.files)

    def test_world_opaque_ratio_is_low(self, tiny_world):
        # The corpus generator emits code our parser models; most lines parse.
        assert lint_world(tiny_world).opaque_ratio < 0.3


PATCH_TEXT = """commit 1234567890abcdef1234567890abcdef12345678
Author: Dev <d@example.org>
Date:   Tue Nov 5 10:00:00 2019 -0500

    add a copy helper

diff --git a/src/a.c b/src/a.c
index 014b04f..a3692bd 100644
--- a/src/a.c
+++ b/src/a.c
@@ -1,3 +1,5 @@
 int g(void) {
+    strcpy(dst, src);
+    keep = 1;
     return 0;
 }
"""


class TestLintPatch:
    def test_fragments_are_added_lines_only(self):
        patch = parse_patch(PATCH_TEXT)
        frags = patch_fragments(patch)
        assert len(frags) == 1
        path, text = frags[0]
        assert path == "src/a.c"
        assert "strcpy" in text and "return 0" not in text

    def test_dangerous_api_found_in_fragment(self):
        report = lint_patch(parse_patch(PATCH_TEXT))
        assert report.counts_by_checker().get("dangerous-api") == 1

    def test_fragment_parse_failure_not_gate(self):
        # A fragment is rarely a complete compilation unit; that must not
        # trip the gate-class parse check.
        report = lint_sources([("frag.c", "} else {\n")], fragments=True)
        assert report.gate_findings == []

    def test_non_code_files_skipped(self):
        patch = parse_patch(PATCH_TEXT.replace("src/a.c", "README.md"))
        assert patch_fragments(patch) == []


class TestAnalyzeSource:
    def test_parse_failure_is_gate_for_full_files(self):
        report = analyze_source("bad.c", "int f( {", make_checkers(["parse-coverage"]))
        if report.parse_failed:
            assert report.findings[0].severity.value == "gate"

    def test_findings_sorted_by_line(self):
        src = "void f(void) {\n    a = 1;\n    int a;\n    strcpy(d, s);\n}\n"
        report = analyze_source("t.c", src)
        lines = [f.line for f in report.findings]
        assert lines == sorted(lines)
