"""Unit tests for the individual checkers and the report model."""

import pytest

from repro.errors import StaticCheckError
from repro.staticcheck import (
    CHECKER_IDS,
    FileReport,
    Finding,
    LintReport,
    Severity,
    analyze_source,
    make_checkers,
)

CLEAN = """\
int clamp(int v, int lo, int hi) {
    if (v < lo) {
        return lo;
    }
    if (v > hi) {
        return hi;
    }
    return v;
}
"""


def findings_of(source, checker_id, path="t.c"):
    report = analyze_source(path, source, make_checkers([checker_id]))
    return [f for f in report.findings if f.checker == checker_id]


class TestDangerousApi:
    def test_strcpy_flagged(self):
        src = "void f(char *d, char *s) {\n    strcpy(d, s);\n}\n"
        hits = findings_of(src, "dangerous-api")
        assert len(hits) == 1
        assert hits[0].line == 2
        assert "strcpy" in hits[0].message

    def test_memcpy_raw_length_flagged(self):
        src = "void f(char *d, char *s, int n) {\n    memcpy(d, s, n);\n}\n"
        assert len(findings_of(src, "dangerous-api")) == 1

    def test_memcpy_sizeof_length_clean(self):
        src = "void f(char *d, char *s) {\n    memcpy(d, s, sizeof(int));\n}\n"
        assert findings_of(src, "dangerous-api") == []

    def test_memcpy_constant_length_clean(self):
        src = "void f(char *d, char *s) {\n    memcpy(d, s, 16);\n}\n"
        assert findings_of(src, "dangerous-api") == []

    def test_identifier_not_call_clean(self):
        src = "void f(void) {\n    int strcpy = 3;\n    strcpy = 4;\n}\n"
        assert findings_of(src, "dangerous-api") == []


class TestMissingCheck:
    def test_unchecked_index_flagged(self):
        src = "void f(int *a, int i) {\n    a[i] = 0;\n}\n"
        hits = findings_of(src, "missing-check")
        assert any("'i'" in f.message for f in hits)

    def test_checked_index_clean(self):
        src = "void f(int *a, int i) {\n    if (i < 8) {\n        a[i] = 0;\n    }\n}\n"
        assert findings_of(src, "missing-check") == []

    def test_unchecked_pointer_param_deref_flagged(self):
        src = "int f(struct s *p) {\n    return p->len;\n}\n"
        hits = findings_of(src, "missing-check")
        assert any("'p'" in f.message for f in hits)

    def test_null_checked_pointer_clean(self):
        src = "int f(struct s *p) {\n    if (!p) {\n        return 0;\n    }\n    return p->len;\n}\n"
        assert findings_of(src, "missing-check") == []

    def test_check_must_precede_use(self):
        src = "int f(int *a, int i) {\n    a[i] = 1;\n    if (i < 4) {\n        return 1;\n    }\n    return 0;\n}\n"
        assert len(findings_of(src, "missing-check")) == 1


class TestSideEffectCond:
    def test_increment_in_condition_is_gate(self):
        src = "void f(int x) {\n    if (x++) {\n        x = 0;\n    }\n}\n"
        hits = findings_of(src, "side-effect-cond")
        assert len(hits) == 1
        assert hits[0].severity is Severity.GATE

    def test_assignment_in_while_flagged(self):
        src = "void f(int x, int y) {\n    while (x = y) {\n        y--;\n    }\n}\n"
        assert len(findings_of(src, "side-effect-cond")) == 1

    def test_call_in_condition_flagged(self):
        src = "void f(void) {\n    if (poll_ready()) {\n        return;\n    }\n}\n"
        assert len(findings_of(src, "side-effect-cond")) == 1

    def test_pure_condition_clean(self):
        assert findings_of(CLEAN, "side-effect-cond") == []

    def test_sizeof_not_a_call(self):
        src = "void f(int x) {\n    if (sizeof(x) > 4) {\n        return;\n    }\n}\n"
        assert findings_of(src, "side-effect-cond") == []

    def test_for_middle_clause_covered(self):
        src = "void f(int n) {\n    int i;\n    for (i = 0; next(i); i++) {\n        n--;\n    }\n}\n"
        assert len(findings_of(src, "side-effect-cond")) == 1


class TestUnreachable:
    def test_statement_after_return_flagged(self):
        src = "int f(int x) {\n    return x;\n    x = 1;\n}\n"
        hits = findings_of(src, "unreachable")
        assert len(hits) == 1
        assert hits[0].line == 3

    def test_case_label_after_break_clean(self):
        src = (
            "void f(int x) {\n    switch (x) {\n    case 0:\n        x = 1;\n        break;\n"
            "    case 1:\n        x = 2;\n        break;\n    }\n}\n"
        )
        assert findings_of(src, "unreachable") == []

    def test_label_after_goto_clean(self):
        src = "void f(int x) {\n    goto out;\nout:\n    x = 1;\n}\n"
        assert findings_of(src, "unreachable") == []

    def test_return_last_statement_clean(self):
        assert findings_of(CLEAN, "unreachable") == []


class TestAllocFree:
    def test_leak_flagged(self):
        src = "void f(void) {\n    char *p = malloc(8);\n    p[0] = 1;\n}\n"
        hits = findings_of(src, "alloc-free")
        assert any("never freed" in f.message for f in hits)

    def test_freed_clean(self):
        src = "void f(void) {\n    char *p = malloc(8);\n    free(p);\n}\n"
        assert findings_of(src, "alloc-free") == []

    def test_returned_clean(self):
        src = "char *f(void) {\n    char *p = malloc(8);\n    return p;\n}\n"
        assert findings_of(src, "alloc-free") == []

    def test_passed_on_clean(self):
        src = "void f(void) {\n    char *p = malloc(8);\n    consume(p);\n}\n"
        assert findings_of(src, "alloc-free") == []

    def test_double_free_flagged(self):
        src = "void f(char *q) {\n    free(q);\n    free(q);\n}\n"
        hits = findings_of(src, "alloc-free")
        assert any("double free" in f.message for f in hits)

    def test_cast_assignment_tracked(self):
        src = "void f(void) {\n    char *p = (char *) malloc(8);\n    p[0] = 1;\n}\n"
        assert len(findings_of(src, "alloc-free")) == 1


class TestScaffoldLeak:
    def test_scaffold_identifier_is_gate(self):
        src = "void f(void) {\n    int _SYS_VAL_0042 = 0;\n}\n"
        hits = findings_of(src, "scaffold-leak")
        assert len(hits) == 1
        assert hits[0].severity is Severity.GATE

    def test_each_identifier_reported_once(self):
        src = "void f(void) {\n    int _SYS_A = 0;\n    _SYS_A = 1;\n    _SYS_A = 2;\n}\n"
        assert len(findings_of(src, "scaffold-leak")) == 1

    def test_clean_file(self):
        assert findings_of(CLEAN, "scaffold-leak") == []


class TestDeclBeforeUse:
    def test_use_before_decl_flagged(self):
        src = "void f(void) {\n    x = 3;\n    int x;\n}\n"
        hits = findings_of(src, "decl-use")
        assert len(hits) == 1
        assert hits[0].line == 2

    def test_decl_then_use_clean(self):
        src = "void f(void) {\n    int x;\n    x = 3;\n}\n"
        assert findings_of(src, "decl-use") == []

    def test_params_never_flagged(self):
        src = "void f(int x) {\n    x = 3;\n    int y = x;\n}\n"
        assert findings_of(src, "decl-use") == []

    def test_undeclared_identifier_not_flagged(self):
        src = "void f(void) {\n    extern_counter = 3;\n}\n"
        assert findings_of(src, "decl-use") == []


class TestParseCoverage:
    def test_mostly_opaque_file_flagged(self):
        src = "".join(
            f"__attribute__((x)) struct s{i} {{ int a; }};\n" for i in range(6)
        )
        hits = findings_of(src, "parse-coverage")
        assert len(hits) == 1
        assert "opaque" in hits[0].message

    def test_fragment_not_flagged_for_coverage(self):
        src = "".join(
            f"__attribute__((x)) struct s{i} {{ int a; }};\n" for i in range(6)
        )
        report = analyze_source("t.c", src, make_checkers(["parse-coverage"]), is_fragment=True)
        assert report.findings == ()

    def test_clean_file(self):
        assert findings_of(CLEAN, "parse-coverage") == []

    def test_header_not_held_to_threshold(self):
        src = "".join(f"__attribute__((x)) struct s{i} {{ int a; }};\n" for i in range(6))
        assert findings_of(src, "parse-coverage", path="t.h") == []


class TestRegistry:
    def test_eight_checkers(self):
        assert len(CHECKER_IDS) == 8
        assert len(make_checkers()) == 8

    def test_unknown_id_raises(self):
        with pytest.raises(StaticCheckError, match="unknown checker"):
            make_checkers(["no-such-checker"])

    def test_subset_instantiation(self):
        checkers = make_checkers(["decl-use", "unreachable"])
        assert [c.id for c in checkers] == ["decl-use", "unreachable"]


class TestModel:
    def test_finding_render(self):
        f = Finding("decl-use", Severity.WARNING, "a.c", 7, "msg", function="g")
        assert f.render() == "a.c:7 [warning/decl-use] msg in g()"

    def test_report_json_round_trip(self):
        report = analyze_source("t.c", "void f(void) {\n    x = 1;\n    int x;\n}\n")
        lr = LintReport(files=[report])
        back = LintReport.from_json(lr.to_json())
        assert back.files == lr.files
        assert back.summary() == lr.summary()

    def test_from_json_rejects_non_report(self):
        with pytest.raises(StaticCheckError):
            LintReport.from_json("{\"format\": \"something-else\", \"files\": []}")
        with pytest.raises(StaticCheckError):
            LintReport.from_json("not json at all")

    def test_severity_filtering(self):
        gate = Finding("scaffold-leak", Severity.GATE, "a.c", 1, "m")
        warn = Finding("decl-use", Severity.WARNING, "a.c", 2, "m")
        lr = LintReport(files=[FileReport(path="a.c", findings=(gate, warn))])
        assert lr.gate_findings == [gate]
        assert lr.findings(Severity.WARNING) == [warn]
        assert len(lr.findings()) == 2

    def test_opaque_ratio_bounds(self):
        fr = FileReport(path="a.c", code_lines=10, opaque_lines=4)
        assert fr.opaque_ratio == pytest.approx(0.4)
        assert FileReport(path="b.c").opaque_ratio == 0.0
