"""Tests for the corpus/synthesis validation gate."""

from repro.obs import ObsRegistry
from repro.staticcheck import run_gate


class TestGate:
    def test_clean_world_passes(self, tiny_world):
        obs = ObsRegistry()
        result = run_gate(tiny_world, variant_sample=6, obs=obs)
        assert result.passed
        assert result.report.gate_findings == []
        assert result.variant_checks > 0
        assert result.variant_failures == []
        assert obs.count("variant_equiv_checks") == result.variant_checks
        assert obs.seconds("gate") > 0

    def test_variant_sample_zero_skips_equivalence(self, tiny_world):
        result = run_gate(tiny_world, variant_sample=0)
        assert result.variant_checks == 0
        assert result.passed

    def test_sampling_is_deterministic(self, tiny_world):
        a = run_gate(tiny_world, variant_sample=4, seed=7)
        b = run_gate(tiny_world, variant_sample=4, seed=7)
        assert a.variant_checks == b.variant_checks
        assert a.summary() == b.summary()

    def test_summary_and_render(self, tiny_world):
        result = run_gate(tiny_world, variant_sample=2)
        s = result.summary()
        assert s["passed"] is True
        assert s["variant_failures"] == 0
        text = result.render_text(max_findings=5)
        assert "gate: PASS" in text
        assert "variant equivalence" in text
